#include "driver/sysfs.h"

#include "common/error.h"

namespace vpim::driver {
namespace {

// Unsigned decimal with overflow rejection; nullopt on anything else.
std::optional<std::uint32_t> parse_u32(std::string_view s) {
  if (s.empty() || s.size() > 10) return std::nullopt;
  std::uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return std::nullopt;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  if (v > 0xFFFFFFFFull) return std::nullopt;
  return static_cast<std::uint32_t>(v);
}

}  // namespace

void Sysfs::set_in_use(std::uint32_t rank, const std::string& owner) {
  std::lock_guard lock(mu_);
  VPIM_CHECK(rank < entries_.size(), "sysfs rank index out of range");
  entries_[rank].in_use = true;
  entries_[rank].owner = owner;
}

void Sysfs::set_free(std::uint32_t rank) {
  std::lock_guard lock(mu_);
  VPIM_CHECK(rank < entries_.size(), "sysfs rank index out of range");
  entries_[rank].in_use = false;
  entries_[rank].owner.clear();
}

void Sysfs::set_failed(std::uint32_t rank) {
  std::lock_guard lock(mu_);
  VPIM_CHECK(rank < entries_.size(), "sysfs rank index out of range");
  entries_[rank].health = RankHealth::kFailed;
}

void Sysfs::clear_failed(std::uint32_t rank) {
  std::lock_guard lock(mu_);
  VPIM_CHECK(rank < entries_.size(), "sysfs rank index out of range");
  entries_[rank].health = RankHealth::kOk;
}

void Sysfs::count_fault(std::uint32_t rank) {
  std::lock_guard lock(mu_);
  VPIM_CHECK(rank < entries_.size(), "sysfs rank index out of range");
  ++entries_[rank].fault_count;
}

RankSysfsEntry Sysfs::read(std::uint32_t rank) const {
  std::lock_guard lock(mu_);
  VPIM_CHECK(rank < entries_.size(), "sysfs rank index out of range");
  return entries_[rank];
}

std::string Sysfs::format(std::uint32_t rank) const {
  const RankSysfsEntry e = read(rank);
  std::string line = "in_use=";
  line += e.in_use ? '1' : '0';
  line += " owner=";
  line += e.owner.empty() ? "-" : e.owner;
  line += " health=";
  line += e.health == RankHealth::kOk ? "ok" : "failed";
  line += " faults=" + std::to_string(e.fault_count);
  return line;
}

std::optional<RankSysfsEntry> Sysfs::parse(std::string_view line) {
  // Exactly four space-separated key=value tokens, in a fixed order, with
  // no duplicates, doubled spaces, or trailing bytes. Owners with embedded
  // spaces (or anything else hostile) fail loudly here and the caller must
  // treat the rank's state as unknown.
  RankSysfsEntry entry;
  if (line.empty() || line.back() == ' ') return std::nullopt;
  std::size_t pos = 0;
  auto next_token = [&]() -> std::optional<std::string_view> {
    if (pos >= line.size()) return std::nullopt;
    const std::size_t space = line.find(' ', pos);
    const std::size_t end =
        space == std::string_view::npos ? line.size() : space;
    if (end == pos) return std::nullopt;  // empty token = doubled space
    std::string_view tok = line.substr(pos, end - pos);
    pos = space == std::string_view::npos ? line.size() : space + 1;
    return tok;
  };
  auto value_of = [](std::string_view tok,
                     std::string_view key) -> std::optional<std::string_view> {
    if (tok.size() <= key.size() + 1) return std::nullopt;
    if (tok.substr(0, key.size()) != key || tok[key.size()] != '=') {
      return std::nullopt;
    }
    return tok.substr(key.size() + 1);
  };

  const auto in_use_tok = next_token();
  if (!in_use_tok) return std::nullopt;
  const auto in_use = value_of(*in_use_tok, "in_use");
  if (!in_use || (*in_use != "0" && *in_use != "1")) return std::nullopt;
  entry.in_use = *in_use == "1";

  const auto owner_tok = next_token();
  if (!owner_tok) return std::nullopt;
  const auto owner = value_of(*owner_tok, "owner");
  if (!owner) return std::nullopt;
  entry.owner = *owner == "-" ? std::string() : std::string(*owner);

  const auto health_tok = next_token();
  if (!health_tok) return std::nullopt;
  const auto health = value_of(*health_tok, "health");
  if (!health || (*health != "ok" && *health != "failed")) {
    return std::nullopt;
  }
  entry.health = *health == "ok" ? RankHealth::kOk : RankHealth::kFailed;

  const auto faults_tok = next_token();
  if (!faults_tok) return std::nullopt;
  const auto faults = value_of(*faults_tok, "faults");
  if (!faults) return std::nullopt;
  const auto count = parse_u32(*faults);
  if (!count) return std::nullopt;
  entry.fault_count = *count;

  if (pos < line.size()) return std::nullopt;  // trailing garbage
  return entry;
}

}  // namespace vpim::driver
