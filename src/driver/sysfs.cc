#include "driver/sysfs.h"

#include "common/error.h"

namespace vpim::driver {

void Sysfs::set_in_use(std::uint32_t rank, const std::string& owner) {
  std::lock_guard lock(mu_);
  VPIM_CHECK(rank < entries_.size(), "sysfs rank index out of range");
  entries_[rank] = {true, owner};
}

void Sysfs::set_free(std::uint32_t rank) {
  std::lock_guard lock(mu_);
  VPIM_CHECK(rank < entries_.size(), "sysfs rank index out of range");
  entries_[rank] = {false, {}};
}

RankSysfsEntry Sysfs::read(std::uint32_t rank) const {
  std::lock_guard lock(mu_);
  VPIM_CHECK(rank < entries_.size(), "sysfs rank index out of range");
  return entries_[rank];
}

}  // namespace vpim::driver
