#include "driver/driver.h"

#include <array>
#include <cstring>
#include <utility>
#include <vector>

#include "common/error.h"
#include "common/log.h"
#include "common/obs/obs.h"
#include "common/thread_pool.h"
#include "upmem/interleave.h"
#include "upmem/layout.h"

namespace vpim::driver {

namespace {

vpim::obs::Tracer* trace_of(upmem::PimMachine& machine) {
  vpim::obs::Hub* hub = machine.obs();
  return hub != nullptr ? hub->tracer : nullptr;
}

// Runs the physical interleave/deinterleave pair for one entry, exercising
// the exact DDR wire format (only when DataPath::real_transform is set).
void real_transform_roundtrip(std::span<const std::uint8_t> data, bool naive,
                              std::vector<std::uint8_t>& scratch) {
  // Sizes must be 8-byte aligned for the wire format; pad into the scratch.
  const std::size_t padded = (data.size() + 7) / 8 * 8;
  scratch.resize(padded * 2);
  std::memcpy(scratch.data(), data.data(), data.size());
  std::memset(scratch.data() + data.size(), 0, padded - data.size());
  std::span<const std::uint8_t> linear(scratch.data(), padded);
  std::span<std::uint8_t> wire(scratch.data() + padded, padded);
  if (naive) {
    upmem::interleave_naive(linear, wire);
  } else {
    upmem::interleave_wide(linear, wire);
  }
  // The bank-side view comes back linear; nothing further to keep.
}

}  // namespace

// ---------------------------------------------------------------- backlog

void CopyBacklog::add(upmem::Rank& rank, const XferEntry& entry,
                      XferDirection dir, const DataPath& path) {
  std::int32_t& g = slot_[entry.dpu];
  if (g < 0) {
    g = static_cast<std::int32_t>(groups_.size());
    groups_.emplace_back();
  }
  groups_[static_cast<std::size_t>(g)].push_back(
      {&rank, entry.dpu, entry.mram_offset, entry.host, entry.size,
       dir == XferDirection::kToRank, path.real_transform, path.naive});
}

void CopyBacklog::flush() {
  if (groups_.empty()) return;
  // One fan-out replays every parked request's copies; group order (and
  // order within a group) is deterministic first-use order, and distinct
  // DPU banks never share a group, so any thread count yields identical
  // bank contents.
  ThreadPool::instance().parallel_for(groups_.size(), [&](std::size_t gi) {
    std::vector<std::uint8_t> scratch;
    for (const Task& t : groups_[gi]) {
      if (t.to_rank) {
        if (t.real_transform) {
          real_transform_roundtrip({t.host, t.size}, t.naive, scratch);
        }
        t.rank->mram(t.dpu).write(t.mram_offset, {t.host, t.size});
      } else {
        t.rank->mram(t.dpu).read(t.mram_offset, {t.host, t.size});
        if (t.real_transform) {
          real_transform_roundtrip({t.host, t.size}, t.naive, scratch);
        }
      }
    }
  });
  groups_.clear();
  slot_.fill(-1);
}

// ---------------------------------------------------------------- mapping

RankMapping::RankMapping(UpmemDriver* drv, std::uint32_t rank_index)
    : drv_(drv), rank_index_(rank_index) {}

RankMapping::RankMapping(RankMapping&& other) noexcept
    : drv_(std::exchange(other.drv_, nullptr)),
      rank_index_(other.rank_index_),
      data_path_(other.data_path_) {}

RankMapping& RankMapping::operator=(RankMapping&& other) noexcept {
  if (this != &other) {
    unmap();
    drv_ = std::exchange(other.drv_, nullptr);
    rank_index_ = other.rank_index_;
    data_path_ = other.data_path_;
  }
  return *this;
}

RankMapping::~RankMapping() { unmap(); }

void RankMapping::unmap() {
  if (drv_ != nullptr) {
    drv_->unmap_rank(rank_index_);
    drv_ = nullptr;
  }
}

std::uint32_t RankMapping::nr_dpus() const {
  VPIM_CHECK(drv_ != nullptr, "use of unmapped rank");
  return drv_->machine().rank(rank_index_).nr_dpus();
}

double RankMapping::copy_gbps() const {
  const CostModel& cost = drv_->machine().cost();
  if (data_path_.gbps_override > 0.0) return data_path_.gbps_override;
  return data_path_.naive ? cost.interleave_naive_gbps
                          : cost.interleave_wide_gbps;
}

void RankMapping::transfer(const TransferMatrix& matrix,
                           CopyBacklog* defer) {
  VPIM_CHECK(drv_ != nullptr, "use of unmapped rank");
  upmem::PimMachine& machine = drv_->machine();
  const CostModel& cost = machine.cost();
  const std::uint64_t bytes = matrix.total_bytes();
  VPIM_CHECK(bytes <= upmem::kMaxXferBytes,
             "rank operations move at most 4 GiB");
  upmem::Rank& rank = machine.rank(rank_index_);
  // Serial DMA-window entry: injected faults fire here, before any time is
  // charged or bytes move, so retries see an unchanged bank.
  rank.check_alive();
  if (FaultPlan* plan = machine.fault_plan()) {
    if (auto fault = plan->on_transfer(rank_index_, machine.clock().now())) {
      if (fault->kind == FaultKind::kRankDeath) rank.fail();
      throw FaultError(*fault);
    }
  }
  obs::ScopedSpan span(trace_of(machine), machine.clock(),
                       obs::SpanKind::kDriverXfer);
  span.set_bytes(bytes);
  span.set_entries(static_cast<std::uint32_t>(matrix.entries.size()));
  span.set_rank(rank_index_);
  machine.clock().advance(cost.native_xfer_fixed_ns +
                          CostModel::bytes_time(bytes, copy_gbps()));
  if (defer != nullptr) {
    // Pipelined drain: every cost and fault above fired normally; park the
    // physical copies for one batched replay at the end of the drain.
    for (const XferEntry& e : matrix.entries) {
      if (e.size == 0) continue;
      VPIM_CHECK(e.host != nullptr, "transfer entry without a host buffer");
      VPIM_CHECK(e.dpu < upmem::kDpuSlotsPerRank,
                 "transfer entry targets an invalid DPU slot");
      defer->add(rank, e, matrix.direction, data_path_);
    }
    return;
  }
  // Group entries by target DPU, preserving request order within a group:
  // one MRAM bank must replay its entries in order, but distinct banks are
  // independent and fan out over the host pool (the backend's "operation
  // workers" made real). Host parallelism only — virtual time was charged
  // above, unchanged.
  std::array<int, upmem::kDpuSlotsPerRank> slot;
  slot.fill(-1);
  std::vector<std::vector<const XferEntry*>> groups;
  for (const XferEntry& e : matrix.entries) {
    if (e.size == 0) continue;
    VPIM_CHECK(e.host != nullptr, "transfer entry without a host buffer");
    VPIM_CHECK(e.dpu < upmem::kDpuSlotsPerRank,
               "transfer entry targets an invalid DPU slot");
    int& g = slot[e.dpu];
    if (g < 0) {
      g = static_cast<int>(groups.size());
      groups.emplace_back();
    }
    groups[g].push_back(&e);
  }
  const bool to_rank = matrix.direction == XferDirection::kToRank;
  ThreadPool::instance().parallel_for(groups.size(), [&](std::size_t gi) {
    std::vector<std::uint8_t> scratch;
    for (const XferEntry* e : groups[gi]) {
      if (to_rank) {
        if (data_path_.real_transform) {
          real_transform_roundtrip({e->host, e->size}, data_path_.naive,
                                   scratch);
        }
        rank.mram(e->dpu).write(e->mram_offset, {e->host, e->size});
      } else {
        rank.mram(e->dpu).read(e->mram_offset, {e->host, e->size});
        if (data_path_.real_transform) {
          real_transform_roundtrip({e->host, e->size}, data_path_.naive,
                                   scratch);
        }
      }
    }
  });
}

void RankMapping::broadcast(std::uint64_t mram_offset,
                            std::span<const std::uint8_t> data) {
  VPIM_CHECK(drv_ != nullptr, "use of unmapped rank");
  upmem::PimMachine& machine = drv_->machine();
  const CostModel& cost = machine.cost();
  upmem::Rank& rank = machine.rank(rank_index_);
  VPIM_CHECK(data.size() <= upmem::kMaxXferBytes,
             "rank operations move at most 4 GiB");
  rank.check_alive();
  if (FaultPlan* plan = machine.fault_plan()) {
    if (auto fault = plan->on_transfer(rank_index_, machine.clock().now())) {
      if (fault->kind == FaultKind::kRankDeath) rank.fail();
      throw FaultError(*fault);
    }
  }

  // The host physically streams the payload into every bank.
  obs::ScopedSpan span(trace_of(machine), machine.clock(),
                       obs::SpanKind::kDriverXfer);
  span.set_bytes(data.size() * rank.nr_dpus());
  span.set_entries(rank.nr_dpus());
  span.set_rank(rank_index_);
  machine.clock().advance(
      cost.native_xfer_fixed_ns +
      CostModel::bytes_time(data.size() * rank.nr_dpus(), copy_gbps()));

  // Storage-side fast path: share immutable pages across banks (copy-on-
  // write), so a 60 MB broadcast to 60 DPUs costs 60 MB of real memory.
  const bool page_aligned = (mram_offset % upmem::kMramPageSize) == 0;
  const std::size_t full_pages = data.size() / upmem::kMramPageSize;
  if (page_aligned && full_pages > 0) {
    const std::size_t shared_bytes = full_pages * upmem::kMramPageSize;
    auto pages = upmem::MramBank::build_pages(data.first(shared_bytes));
    ThreadPool::instance().parallel_for(rank.nr_dpus(), [&](std::size_t d) {
      rank.mram(static_cast<std::uint32_t>(d)).adopt_pages(mram_offset,
                                                           pages);
      if (shared_bytes < data.size()) {
        rank.mram(static_cast<std::uint32_t>(d))
            .write(mram_offset + shared_bytes, data.subspan(shared_bytes));
      }
    });
  } else {
    ThreadPool::instance().parallel_for(rank.nr_dpus(), [&](std::size_t d) {
      rank.mram(static_cast<std::uint32_t>(d)).write(mram_offset, data);
    });
  }
}

void RankMapping::ci_load(std::string_view kernel_name) {
  VPIM_CHECK(drv_ != nullptr, "use of unmapped rank");
  upmem::PimMachine& machine = drv_->machine();
  obs::ScopedSpan span(trace_of(machine), machine.clock(),
                       obs::SpanKind::kDriverCi);
  span.set_rank(rank_index_);
  machine.clock().advance(machine.cost().ci_op_native_ns);
  machine.rank(rank_index_).ci_load(kernel_name);
}

void RankMapping::ci_launch(std::uint64_t dpu_mask,
                            std::optional<std::uint32_t> nr_tasklets) {
  VPIM_CHECK(drv_ != nullptr, "use of unmapped rank");
  upmem::PimMachine& machine = drv_->machine();
  obs::ScopedSpan span(trace_of(machine), machine.clock(),
                       obs::SpanKind::kDriverCi);
  span.set_rank(rank_index_);
  machine.clock().advance(machine.cost().ci_op_native_ns);
  machine.rank(rank_index_).ci_launch(dpu_mask, nr_tasklets);
}

std::uint64_t RankMapping::ci_running_mask() {
  VPIM_CHECK(drv_ != nullptr, "use of unmapped rank");
  upmem::PimMachine& machine = drv_->machine();
  machine.clock().advance(machine.cost().ci_op_native_ns);
  return machine.rank(rank_index_).ci_running_mask();
}

void RankMapping::ci_copy_to_symbol(std::uint32_t dpu,
                                    std::string_view symbol,
                                    std::uint32_t offset,
                                    std::span<const std::uint8_t> data) {
  VPIM_CHECK(drv_ != nullptr, "use of unmapped rank");
  upmem::PimMachine& machine = drv_->machine();
  machine.clock().advance(machine.cost().ci_op_native_ns);
  machine.rank(rank_index_).ci_copy_to_symbol(dpu, symbol, offset, data);
}

void RankMapping::ci_copy_from_symbol(std::uint32_t dpu,
                                      std::string_view symbol,
                                      std::uint32_t offset,
                                      std::span<std::uint8_t> out) {
  VPIM_CHECK(drv_ != nullptr, "use of unmapped rank");
  upmem::PimMachine& machine = drv_->machine();
  machine.clock().advance(machine.cost().ci_op_native_ns);
  machine.rank(rank_index_).ci_copy_from_symbol(dpu, symbol, offset, out);
}

// ----------------------------------------------------------------- driver

UpmemDriver::UpmemDriver(upmem::PimMachine& machine)
    : machine_(machine),
      sysfs_(machine.nr_ranks()),
      mapped_(machine.nr_ranks(), false),
      map_gen_(machine.nr_ranks(), 0) {}

RankMapping UpmemDriver::map_rank(std::uint32_t rank,
                                  const std::string& owner) {
  VPIM_CHECK(rank < machine_.nr_ranks(), "rank index out of range");
  {
    std::lock_guard lock(map_mu_);
    VPIM_CHECK(!mapped_[rank], "rank already mapped in performance mode");
    mapped_[rank] = 1;
    ++map_gen_[rank];
  }
  sysfs_.set_in_use(rank, owner);
  return RankMapping(this, rank);
}

bool UpmemDriver::is_mapped(std::uint32_t rank) const {
  VPIM_CHECK(rank < machine_.nr_ranks(), "rank index out of range");
  std::lock_guard lock(map_mu_);
  return mapped_[rank] != 0;
}

std::uint64_t UpmemDriver::map_generation(std::uint32_t rank) const {
  VPIM_CHECK(rank < machine_.nr_ranks(), "rank index out of range");
  std::lock_guard lock(map_mu_);
  return map_gen_[rank];
}

void UpmemDriver::unmap_rank(std::uint32_t rank) {
  {
    std::lock_guard lock(map_mu_);
    mapped_[rank] = 0;
  }
  sysfs_.set_free(rank);
}

void UpmemDriver::safe_transfer(std::uint32_t rank,
                                const TransferMatrix& matrix) {
  machine_.clock().advance(machine_.cost().ioctl_ns);
  do_transfer(rank, matrix, DataPath{});
}

void UpmemDriver::do_transfer(std::uint32_t rank,
                              const TransferMatrix& matrix,
                              const DataPath& path) {
  // Reuse the mapping logic without toggling sysfs: build a transient
  // mapping view. Safe mode is driver-internal, so exclusivity with perf
  // mode is the caller's concern (as on real hardware).
  RankMapping view(this, rank);
  view.set_data_path(path);
  view.transfer(matrix);
  view.drv_ = nullptr;  // do not run unmap side effects
}

void UpmemDriver::safe_ci_load(std::uint32_t rank,
                               std::string_view kernel_name) {
  machine_.clock().advance(machine_.cost().ioctl_ns);
  machine_.rank(rank).ci_load(kernel_name);
}

void UpmemDriver::safe_ci_launch(std::uint32_t rank, std::uint64_t dpu_mask,
                                 std::optional<std::uint32_t> nr_tasklets) {
  machine_.clock().advance(machine_.cost().ioctl_ns);
  machine_.rank(rank).ci_launch(dpu_mask, nr_tasklets);
}

std::uint64_t UpmemDriver::safe_ci_running_mask(std::uint32_t rank) {
  machine_.clock().advance(machine_.cost().ioctl_ns);
  return machine_.rank(rank).ci_running_mask();
}

void UpmemDriver::reset_rank(std::uint32_t rank) {
  VPIM_CHECK(rank < machine_.nr_ranks(), "rank index out of range");
  VPIM_CHECK(!is_mapped(rank), "reset of a mapped rank");
  // The manager memsets the whole 4 GiB rank-mapped region (64 slots x
  // 64 MiB), independent of how many DPUs are functional.
  const std::uint64_t region =
      static_cast<std::uint64_t>(upmem::kDpuSlotsPerRank) * upmem::kMramSize;
  machine_.clock().advance(
      CostModel::bytes_time(region, machine_.cost().memset_gbps));
  machine_.rank(rank).reset_memory();
}

// ---------------------------------------------------------- fault surface

std::string UpmemDriver::rank_status_line(std::uint32_t rank) const {
  return sysfs_.format(rank);
}

void UpmemDriver::log_fault(const FaultRecord& record) {
  if (record.rank < machine_.nr_ranks()) {
    sysfs_.count_fault(record.rank);
    if (record.kind == FaultKind::kRankDeath) sysfs_.set_failed(record.rank);
  }
  std::lock_guard lock(fault_mu_);
  fault_log_.push_back(serialize_fault_record(record));
}

void UpmemDriver::log_raw_fault_bytes(std::span<const std::uint8_t> bytes) {
  std::lock_guard lock(fault_mu_);
  fault_log_.emplace_back(bytes.begin(), bytes.end());
}

std::vector<FaultRecord> UpmemDriver::drain_fault_records() {
  std::vector<std::vector<std::uint8_t>> raw;
  {
    std::lock_guard lock(fault_mu_);
    raw.swap(fault_log_);
  }
  std::vector<FaultRecord> records;
  records.reserve(raw.size());
  for (const auto& bytes : raw) {
    if (auto rec = parse_fault_record(bytes, machine_.nr_ranks())) {
      records.push_back(*rec);
    } else {
      VPIM_WARN("driver", "dropping malformed fault record (%zu bytes)",
                bytes.size());
    }
  }
  return records;
}

bool UpmemDriver::try_recover_rank(std::uint32_t rank, bool charge_time) {
  VPIM_CHECK(rank < machine_.nr_ranks(), "rank index out of range");
  if (is_mapped(rank)) return false;
  upmem::Rank& r = machine_.rank(rank);
  try {
    if (charge_time) {
      const std::uint64_t region =
          static_cast<std::uint64_t>(upmem::kDpuSlotsPerRank) *
          upmem::kMramSize;
      machine_.clock().advance(
          CostModel::bytes_time(region, machine_.cost().memset_gbps) +
          machine_.cost().rank_probe_ns);
    }
    r.reset_memory();
    // Verify: pattern write + readback in every functional bank, then
    // scrub the probe back to zero so a recovered rank hands out zeroed
    // memory like a fresh reset would.
    std::array<std::uint8_t, 64> pattern;
    for (std::size_t i = 0; i < pattern.size(); ++i) {
      pattern[i] = static_cast<std::uint8_t>(0xA5 ^ i);
    }
    std::array<std::uint8_t, 64> readback{};
    const std::array<std::uint8_t, 64> zeros{};
    for (std::uint32_t d = 0; d < r.nr_dpus(); ++d) {
      r.mram(d).write(0, pattern);
      r.mram(d).read(0, readback);
      if (readback != pattern) return false;
      r.mram(d).write(0, zeros);
    }
  } catch (const FaultError&) {
    return false;
  }
  sysfs_.clear_failed(rank);
  return true;
}

void UpmemDriver::apply_fault_plan() {
  const SimNs now = machine_.clock().now();
  for (auto it = seizures_.begin(); it != seizures_.end();) {
    if (now >= it->release_at) {
      unmap_rank(it->rank);
      it = seizures_.erase(it);
    } else {
      ++it;
    }
  }
  FaultPlan* plan = machine_.fault_plan();
  if (plan == nullptr) return;
  for (const FaultEvent& ev : plan->take_due_seizures(now)) {
    if (ev.rank >= machine_.nr_ranks()) continue;
    {
      std::lock_guard lock(map_mu_);
      if (mapped_[ev.rank]) continue;  // mapped ranks resist the grab
      mapped_[ev.rank] = 1;
    }
    sysfs_.set_in_use(ev.rank, "native-seizure");
    log_fault({FaultKind::kRankSeizure, ev.rank, 0, now});
    // The squatter scribbles over the head of every bank if the rank is
    // idle, making residual-tenant-data loss real.
    upmem::Rank& r = machine_.rank(ev.rank);
    if (!r.failed() && !r.ci_any_running()) {
      std::array<std::uint8_t, 256> junk;
      for (std::size_t i = 0; i < junk.size(); ++i) {
        junk[i] = static_cast<std::uint8_t>(0xDE ^ (i * 7));
      }
      for (std::uint32_t d = 0; d < r.nr_dpus(); ++d) {
        r.mram(d).write(0, junk);
      }
    }
    seizures_.push_back({ev.rank, now + ev.hold_ns});
  }
}

}  // namespace vpim::driver
