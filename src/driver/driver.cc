#include "driver/driver.h"

#include <array>
#include <cstring>
#include <utility>
#include <vector>

#include "common/error.h"
#include "common/thread_pool.h"
#include "upmem/interleave.h"
#include "upmem/layout.h"

namespace vpim::driver {

namespace {

// Runs the physical interleave/deinterleave pair for one entry, exercising
// the exact DDR wire format (only when DataPath::real_transform is set).
void real_transform_roundtrip(std::span<const std::uint8_t> data, bool naive,
                              std::vector<std::uint8_t>& scratch) {
  // Sizes must be 8-byte aligned for the wire format; pad into the scratch.
  const std::size_t padded = (data.size() + 7) / 8 * 8;
  scratch.resize(padded * 2);
  std::memcpy(scratch.data(), data.data(), data.size());
  std::memset(scratch.data() + data.size(), 0, padded - data.size());
  std::span<const std::uint8_t> linear(scratch.data(), padded);
  std::span<std::uint8_t> wire(scratch.data() + padded, padded);
  if (naive) {
    upmem::interleave_naive(linear, wire);
  } else {
    upmem::interleave_wide(linear, wire);
  }
  // The bank-side view comes back linear; nothing further to keep.
}

}  // namespace

// ---------------------------------------------------------------- mapping

RankMapping::RankMapping(UpmemDriver* drv, std::uint32_t rank_index)
    : drv_(drv), rank_index_(rank_index) {}

RankMapping::RankMapping(RankMapping&& other) noexcept
    : drv_(std::exchange(other.drv_, nullptr)),
      rank_index_(other.rank_index_),
      data_path_(other.data_path_) {}

RankMapping& RankMapping::operator=(RankMapping&& other) noexcept {
  if (this != &other) {
    unmap();
    drv_ = std::exchange(other.drv_, nullptr);
    rank_index_ = other.rank_index_;
    data_path_ = other.data_path_;
  }
  return *this;
}

RankMapping::~RankMapping() { unmap(); }

void RankMapping::unmap() {
  if (drv_ != nullptr) {
    drv_->unmap_rank(rank_index_);
    drv_ = nullptr;
  }
}

std::uint32_t RankMapping::nr_dpus() const {
  VPIM_CHECK(drv_ != nullptr, "use of unmapped rank");
  return drv_->machine().rank(rank_index_).nr_dpus();
}

double RankMapping::copy_gbps() const {
  const CostModel& cost = drv_->machine().cost();
  if (data_path_.gbps_override > 0.0) return data_path_.gbps_override;
  return data_path_.naive ? cost.interleave_naive_gbps
                          : cost.interleave_wide_gbps;
}

void RankMapping::transfer(const TransferMatrix& matrix) {
  VPIM_CHECK(drv_ != nullptr, "use of unmapped rank");
  upmem::PimMachine& machine = drv_->machine();
  const CostModel& cost = machine.cost();
  const std::uint64_t bytes = matrix.total_bytes();
  VPIM_CHECK(bytes <= upmem::kMaxXferBytes,
             "rank operations move at most 4 GiB");
  machine.clock().advance(cost.native_xfer_fixed_ns +
                          CostModel::bytes_time(bytes, copy_gbps()));

  upmem::Rank& rank = machine.rank(rank_index_);
  // Group entries by target DPU, preserving request order within a group:
  // one MRAM bank must replay its entries in order, but distinct banks are
  // independent and fan out over the host pool (the backend's "operation
  // workers" made real). Host parallelism only — virtual time was charged
  // above, unchanged.
  std::array<int, upmem::kDpuSlotsPerRank> slot;
  slot.fill(-1);
  std::vector<std::vector<const XferEntry*>> groups;
  for (const XferEntry& e : matrix.entries) {
    if (e.size == 0) continue;
    VPIM_CHECK(e.host != nullptr, "transfer entry without a host buffer");
    VPIM_CHECK(e.dpu < upmem::kDpuSlotsPerRank,
               "transfer entry targets an invalid DPU slot");
    int& g = slot[e.dpu];
    if (g < 0) {
      g = static_cast<int>(groups.size());
      groups.emplace_back();
    }
    groups[g].push_back(&e);
  }
  const bool to_rank = matrix.direction == XferDirection::kToRank;
  ThreadPool::instance().parallel_for(groups.size(), [&](std::size_t gi) {
    std::vector<std::uint8_t> scratch;
    for (const XferEntry* e : groups[gi]) {
      if (to_rank) {
        if (data_path_.real_transform) {
          real_transform_roundtrip({e->host, e->size}, data_path_.naive,
                                   scratch);
        }
        rank.mram(e->dpu).write(e->mram_offset, {e->host, e->size});
      } else {
        rank.mram(e->dpu).read(e->mram_offset, {e->host, e->size});
        if (data_path_.real_transform) {
          real_transform_roundtrip({e->host, e->size}, data_path_.naive,
                                   scratch);
        }
      }
    }
  });
}

void RankMapping::broadcast(std::uint64_t mram_offset,
                            std::span<const std::uint8_t> data) {
  VPIM_CHECK(drv_ != nullptr, "use of unmapped rank");
  upmem::PimMachine& machine = drv_->machine();
  const CostModel& cost = machine.cost();
  upmem::Rank& rank = machine.rank(rank_index_);
  VPIM_CHECK(data.size() <= upmem::kMaxXferBytes,
             "rank operations move at most 4 GiB");

  // The host physically streams the payload into every bank.
  machine.clock().advance(
      cost.native_xfer_fixed_ns +
      CostModel::bytes_time(data.size() * rank.nr_dpus(), copy_gbps()));

  // Storage-side fast path: share immutable pages across banks (copy-on-
  // write), so a 60 MB broadcast to 60 DPUs costs 60 MB of real memory.
  const bool page_aligned = (mram_offset % upmem::kMramPageSize) == 0;
  const std::size_t full_pages = data.size() / upmem::kMramPageSize;
  if (page_aligned && full_pages > 0) {
    const std::size_t shared_bytes = full_pages * upmem::kMramPageSize;
    auto pages = upmem::MramBank::build_pages(data.first(shared_bytes));
    ThreadPool::instance().parallel_for(rank.nr_dpus(), [&](std::size_t d) {
      rank.mram(static_cast<std::uint32_t>(d)).adopt_pages(mram_offset,
                                                           pages);
      if (shared_bytes < data.size()) {
        rank.mram(static_cast<std::uint32_t>(d))
            .write(mram_offset + shared_bytes, data.subspan(shared_bytes));
      }
    });
  } else {
    ThreadPool::instance().parallel_for(rank.nr_dpus(), [&](std::size_t d) {
      rank.mram(static_cast<std::uint32_t>(d)).write(mram_offset, data);
    });
  }
}

void RankMapping::ci_load(std::string_view kernel_name) {
  VPIM_CHECK(drv_ != nullptr, "use of unmapped rank");
  upmem::PimMachine& machine = drv_->machine();
  machine.clock().advance(machine.cost().ci_op_native_ns);
  machine.rank(rank_index_).ci_load(kernel_name);
}

void RankMapping::ci_launch(std::uint64_t dpu_mask,
                            std::optional<std::uint32_t> nr_tasklets) {
  VPIM_CHECK(drv_ != nullptr, "use of unmapped rank");
  upmem::PimMachine& machine = drv_->machine();
  machine.clock().advance(machine.cost().ci_op_native_ns);
  machine.rank(rank_index_).ci_launch(dpu_mask, nr_tasklets);
}

std::uint64_t RankMapping::ci_running_mask() {
  VPIM_CHECK(drv_ != nullptr, "use of unmapped rank");
  upmem::PimMachine& machine = drv_->machine();
  machine.clock().advance(machine.cost().ci_op_native_ns);
  return machine.rank(rank_index_).ci_running_mask();
}

void RankMapping::ci_copy_to_symbol(std::uint32_t dpu,
                                    std::string_view symbol,
                                    std::uint32_t offset,
                                    std::span<const std::uint8_t> data) {
  VPIM_CHECK(drv_ != nullptr, "use of unmapped rank");
  upmem::PimMachine& machine = drv_->machine();
  machine.clock().advance(machine.cost().ci_op_native_ns);
  machine.rank(rank_index_).ci_copy_to_symbol(dpu, symbol, offset, data);
}

void RankMapping::ci_copy_from_symbol(std::uint32_t dpu,
                                      std::string_view symbol,
                                      std::uint32_t offset,
                                      std::span<std::uint8_t> out) {
  VPIM_CHECK(drv_ != nullptr, "use of unmapped rank");
  upmem::PimMachine& machine = drv_->machine();
  machine.clock().advance(machine.cost().ci_op_native_ns);
  machine.rank(rank_index_).ci_copy_from_symbol(dpu, symbol, offset, out);
}

// ----------------------------------------------------------------- driver

UpmemDriver::UpmemDriver(upmem::PimMachine& machine)
    : machine_(machine),
      sysfs_(machine.nr_ranks()),
      mapped_(machine.nr_ranks(), false) {}

RankMapping UpmemDriver::map_rank(std::uint32_t rank,
                                  const std::string& owner) {
  VPIM_CHECK(rank < machine_.nr_ranks(), "rank index out of range");
  {
    std::lock_guard lock(map_mu_);
    VPIM_CHECK(!mapped_[rank], "rank already mapped in performance mode");
    mapped_[rank] = 1;
  }
  sysfs_.set_in_use(rank, owner);
  return RankMapping(this, rank);
}

bool UpmemDriver::is_mapped(std::uint32_t rank) const {
  VPIM_CHECK(rank < machine_.nr_ranks(), "rank index out of range");
  std::lock_guard lock(map_mu_);
  return mapped_[rank] != 0;
}

void UpmemDriver::unmap_rank(std::uint32_t rank) {
  {
    std::lock_guard lock(map_mu_);
    mapped_[rank] = 0;
  }
  sysfs_.set_free(rank);
}

void UpmemDriver::safe_transfer(std::uint32_t rank,
                                const TransferMatrix& matrix) {
  machine_.clock().advance(machine_.cost().ioctl_ns);
  do_transfer(rank, matrix, DataPath{});
}

void UpmemDriver::do_transfer(std::uint32_t rank,
                              const TransferMatrix& matrix,
                              const DataPath& path) {
  // Reuse the mapping logic without toggling sysfs: build a transient
  // mapping view. Safe mode is driver-internal, so exclusivity with perf
  // mode is the caller's concern (as on real hardware).
  RankMapping view(this, rank);
  view.set_data_path(path);
  view.transfer(matrix);
  view.drv_ = nullptr;  // do not run unmap side effects
}

void UpmemDriver::safe_ci_load(std::uint32_t rank,
                               std::string_view kernel_name) {
  machine_.clock().advance(machine_.cost().ioctl_ns);
  machine_.rank(rank).ci_load(kernel_name);
}

void UpmemDriver::safe_ci_launch(std::uint32_t rank, std::uint64_t dpu_mask,
                                 std::optional<std::uint32_t> nr_tasklets) {
  machine_.clock().advance(machine_.cost().ioctl_ns);
  machine_.rank(rank).ci_launch(dpu_mask, nr_tasklets);
}

std::uint64_t UpmemDriver::safe_ci_running_mask(std::uint32_t rank) {
  machine_.clock().advance(machine_.cost().ioctl_ns);
  return machine_.rank(rank).ci_running_mask();
}

void UpmemDriver::reset_rank(std::uint32_t rank) {
  VPIM_CHECK(rank < machine_.nr_ranks(), "rank index out of range");
  VPIM_CHECK(!is_mapped(rank), "reset of a mapped rank");
  // The manager memsets the whole 4 GiB rank-mapped region (64 slots x
  // 64 MiB), independent of how many DPUs are functional.
  const std::uint64_t region =
      static_cast<std::uint64_t>(upmem::kDpuSlotsPerRank) * upmem::kMramSize;
  machine_.clock().advance(
      CostModel::bytes_time(region, machine_.cost().memset_gbps));
  machine_.rank(rank).reset_memory();
}

}  // namespace vpim::driver
