// Simulated UPMEM kernel driver (paper §2, Fig 3).
//
// Two access modes, with distinct cost profiles:
//  - *safe mode*: operations go through ioctl calls into the driver, which
//    provides isolation between host applications (each call pays the
//    kernel-entry cost);
//  - *performance mode*: a process mmaps the rank's MRAM and control
//    interfaces and bypasses the driver entirely (RankMapping below).
//
// vPIM uses both: the guest SDK runs in safe mode against the frontend
// device file, while the Firecracker backend maps ranks in performance
// mode (§3.4).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/fault.h"
#include "driver/sysfs.h"
#include "driver/xfer.h"
#include "upmem/layout.h"
#include "upmem/machine.h"

namespace vpim::driver {

// How a mapping moves bytes between host memory and rank MRAM.
struct DataPath {
  // Per-byte interleave loop (the paper's Rust/AVX2 baseline) instead of
  // the wide-word path (the C/AVX512 rewrite).
  bool naive = false;
  // Physically run the (de)interleave kernels through a scratch buffer.
  // Bit-for-bit faithful to the DDR wire format; used by fidelity tests.
  // Benches leave it off: virtual time is charged either way.
  bool real_transform = false;
  // Overrides the cost-model bandwidth, e.g. for backend copies gathering
  // from scattered guest pages. 0 = use the cost model.
  double gbps_override = 0.0;
};

class UpmemDriver;

// Deferred copy sink for the pipelined request path (ISSUE 7). A mapping
// normally executes a transfer's host<->MRAM copies inside the call; when
// the backend drains a whole submission batch it instead parks each
// request's copies here and replays them all in ONE parallel_for, so the
// wall-clock cost of thread fan-out is paid once per batch rather than
// once per request. Virtual time is unaffected: transfer() charges its
// streaming cost before deferring, and the replay is cost-free.
//
// Tasks are stored by value (never as XferEntry pointers — the backend
// reuses its deserialization scratch across requests in a batch), grouped
// per DPU in first-use order. Within a group, append order is replay
// order, so read-after-write on the same DPU stays correct across a
// batch. Cross-request host-buffer aliasing is excluded by the async
// API's buffer-stability contract.
class CopyBacklog {
 public:
  CopyBacklog() { slot_.fill(-1); }

  void add(upmem::Rank& rank, const XferEntry& entry, XferDirection dir,
           const DataPath& path);
  bool empty() const { return groups_.empty(); }
  // Replays every parked copy (one parallel_for over DPU groups, per-group
  // transform scratch), then resets for the next batch.
  void flush();

 private:
  struct Task {
    upmem::Rank* rank;
    std::uint32_t dpu;
    std::uint64_t mram_offset;
    std::uint8_t* host;
    std::uint64_t size;
    bool to_rank;
    bool real_transform;
    bool naive;
  };
  std::array<std::int32_t, upmem::kDpuSlotsPerRank> slot_{};
  std::vector<std::vector<Task>> groups_;
};

// Performance-mode mapping of one rank. Exclusive: a rank can be mapped by
// at most one process at a time. Move-only RAII; unmapping frees the rank
// in sysfs, which is how the manager's observer learns about releases.
class RankMapping {
 public:
  RankMapping(RankMapping&& other) noexcept;
  RankMapping& operator=(RankMapping&& other) noexcept;
  RankMapping(const RankMapping&) = delete;
  RankMapping& operator=(const RankMapping&) = delete;
  ~RankMapping();

  std::uint32_t rank_index() const { return rank_index_; }
  std::uint32_t nr_dpus() const;

  void set_data_path(const DataPath& path) { data_path_ = path; }

  // Scatter/gather data transfer for the whole matrix (one fixed software
  // cost per call, plus streaming time). With `defer`, all virtual-time
  // costs and fault hooks fire as usual but the physical copies are parked
  // in the backlog for a batched replay (pipelined backend drain).
  void transfer(const TransferMatrix& matrix, CopyBacklog* defer = nullptr);

  // Same payload to every DPU (UPMEM broadcast transfers). Physically the
  // host still writes each bank, so virtual time scales with nr_dpus.
  void broadcast(std::uint64_t mram_offset, std::span<const std::uint8_t> data);

  // Control-interface operations; each charges the perf-mode CI cost.
  void ci_load(std::string_view kernel_name);
  void ci_launch(std::uint64_t dpu_mask,
                 std::optional<std::uint32_t> nr_tasklets = std::nullopt);
  std::uint64_t ci_running_mask();
  void ci_copy_to_symbol(std::uint32_t dpu, std::string_view symbol,
                         std::uint32_t offset,
                         std::span<const std::uint8_t> data);
  void ci_copy_from_symbol(std::uint32_t dpu, std::string_view symbol,
                           std::uint32_t offset, std::span<std::uint8_t> out);

  // Releases the mapping early (idempotent).
  void unmap();

 private:
  friend class UpmemDriver;
  RankMapping(UpmemDriver* drv, std::uint32_t rank_index);

  double copy_gbps() const;

  UpmemDriver* drv_ = nullptr;  // null once unmapped
  std::uint32_t rank_index_ = 0;
  DataPath data_path_;
};

class UpmemDriver {
 public:
  explicit UpmemDriver(upmem::PimMachine& machine);

  upmem::PimMachine& machine() { return machine_; }
  Sysfs& sysfs() { return sysfs_; }

  // Performance mode: exclusive mmap of one rank.
  RankMapping map_rank(std::uint32_t rank, const std::string& owner);
  bool is_mapped(std::uint32_t rank) const;
  // Monotonic per-rank map counter, bumped on every successful map_rank.
  // Lets a polling observer tell "mapped and released between two polls"
  // (generation changed) apart from "never mapped at all" — the sysfs
  // in_use bit alone cannot distinguish the two.
  std::uint64_t map_generation(std::uint32_t rank) const;

  // Safe mode: each call pays the ioctl cost, then performs the operation
  // with the driver's own (wide) data path.
  void safe_transfer(std::uint32_t rank, const TransferMatrix& matrix);
  void safe_ci_load(std::uint32_t rank, std::string_view kernel_name);
  void safe_ci_launch(std::uint32_t rank, std::uint64_t dpu_mask,
                      std::optional<std::uint32_t> nr_tasklets = std::nullopt);
  std::uint64_t safe_ci_running_mask(std::uint32_t rank);

  // Clears a rank's memory, charging host memset time over the full 4 GiB
  // rank-mapped region (manager reset path, ~597 ms in the paper).
  void reset_rank(std::uint32_t rank);

  // ---- Fault surface ----------------------------------------------------
  // The textual sysfs status file for one rank (what the manager's
  // observer actually reads and parses).
  std::string rank_status_line(std::uint32_t rank) const;

  // Records a fault in the driver's error mailbox (serialized bytes, like
  // a device DMA) and updates sysfs health: every fault bumps the rank's
  // fault counter; kRankDeath marks it failed.
  void log_fault(const FaultRecord& record);
  // Raw mailbox write, bypassing serialization — the fuzz tests use this
  // to feed the parse path truncated/garbage records.
  void log_raw_fault_bytes(std::span<const std::uint8_t> bytes);
  // Drains and parses the mailbox; malformed records are dropped with a
  // warning (the parser treats mailbox bytes as untrusted).
  std::vector<FaultRecord> drain_fault_records();

  // Reset-verify pass over a quarantined rank: erase, then a pattern
  // write/readback probe in every bank. Returns false (without touching
  // sysfs health) if the rank is mapped, still dead, or fails the probe.
  bool try_recover_rank(std::uint32_t rank, bool charge_time);

  // Fires due FaultPlan seizures (a native app grabbing free ranks) and
  // releases expired ones. Callers must serialize calls; the manager
  // invokes this from its locked observe pass.
  void apply_fault_plan();

 private:
  friend class RankMapping;
  void do_transfer(std::uint32_t rank, const TransferMatrix& matrix,
                   const DataPath& path);
  void unmap_rank(std::uint32_t rank);

  upmem::PimMachine& machine_;
  Sysfs sysfs_;
  // Mapping bookkeeping is mutex-protected like the real kernel driver's;
  // the data path itself is single-threaded (virtual time).
  mutable std::mutex map_mu_;
  std::vector<char> mapped_;
  std::vector<std::uint64_t> map_gen_;

  // Error mailbox: serialized fault records awaiting the observer's drain.
  mutable std::mutex fault_mu_;
  std::vector<std::vector<std::uint8_t>> fault_log_;
  // Ranks currently held by an injected native seizure, and when the
  // squatter lets go. Serialized by apply_fault_plan's caller.
  struct Seizure {
    std::uint32_t rank;
    SimNs release_at;
  };
  std::vector<Seizure> seizures_;
};

}  // namespace vpim::driver
