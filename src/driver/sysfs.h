// Simulated sysfs view of rank usage.
//
// The real UPMEM driver exposes per-rank status files under sysfs; the vPIM
// manager's observer thread polls them to detect releases without any
// cooperation from applications (§3.5). This registry is that surface:
// perf-mode mappings flip a rank to "in use" on map and back to "free" on
// unmap, and anyone may poll.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace vpim::driver {

struct RankSysfsEntry {
  bool in_use = false;
  std::string owner;  // diagnostic tag: process/VM name
};

class Sysfs {
 public:
  explicit Sysfs(std::uint32_t nr_ranks) : entries_(nr_ranks) {}

  void set_in_use(std::uint32_t rank, const std::string& owner);
  void set_free(std::uint32_t rank);
  RankSysfsEntry read(std::uint32_t rank) const;
  std::uint32_t nr_ranks() const {
    return static_cast<std::uint32_t>(entries_.size());
  }

 private:
  mutable std::mutex mu_;
  std::vector<RankSysfsEntry> entries_;
};

}  // namespace vpim::driver
