// Simulated sysfs view of rank usage and health.
//
// The real UPMEM driver exposes per-rank status files under sysfs; the vPIM
// manager's observer thread polls them to detect releases without any
// cooperation from applications (§3.5). This registry is that surface:
// perf-mode mappings flip a rank to "in use" on map and back to "free" on
// unmap, fault handling marks ranks failed, and anyone may poll.
//
// The manager consumes the *textual* status line (format/parse round trip)
// rather than the struct, mirroring a real sysfs read — which makes the
// parser an attack surface for hostile co-tenants, fuzzed in
// tests/driver_fuzz_test.cc. parse() treats its input as hostile and
// returns nullopt for anything it does not fully recognize.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace vpim::driver {

enum class RankHealth : std::uint8_t {
  kOk = 0,
  kFailed = 1,  // quarantined: a permanent fault was reported on this rank
};

struct RankSysfsEntry {
  bool in_use = false;
  std::string owner;  // diagnostic tag: process/VM name
  RankHealth health = RankHealth::kOk;
  std::uint32_t fault_count = 0;  // faults reported against this rank
};

class Sysfs {
 public:
  explicit Sysfs(std::uint32_t nr_ranks) : entries_(nr_ranks) {}

  void set_in_use(std::uint32_t rank, const std::string& owner);
  void set_free(std::uint32_t rank);
  // Health survives map/unmap cycles; only an explicit clear (after a
  // successful reset-verify) brings a failed rank back.
  void set_failed(std::uint32_t rank);
  void clear_failed(std::uint32_t rank);
  void count_fault(std::uint32_t rank);
  RankSysfsEntry read(std::uint32_t rank) const;
  std::uint32_t nr_ranks() const {
    return static_cast<std::uint32_t>(entries_.size());
  }

  // Status-file text, e.g. "in_use=1 owner=vm-a health=ok faults=0".
  // An empty owner renders as "-".
  std::string format(std::uint32_t rank) const;
  // Strict inverse of format(); nullopt on any malformed input.
  static std::optional<RankSysfsEntry> parse(std::string_view line);

 private:
  mutable std::mutex mu_;
  std::vector<RankSysfsEntry> entries_;
};

}  // namespace vpim::driver
