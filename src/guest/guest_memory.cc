#include "guest/guest_memory.h"

#include <cstring>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define VPIM_GUEST_MEMORY_MMAP 1
#include <sys/mman.h>
#endif

namespace vpim::guest {

GuestMemory::GuestMemory(std::uint64_t bytes) : size_(bytes) {
  VPIM_CHECK(bytes % kGuestPageSize == 0,
             "guest RAM must be page-aligned in size");
  VPIM_CHECK(bytes >= 2 * kGuestPageSize, "guest RAM too small");
#ifdef VPIM_GUEST_MEMORY_MMAP
  // Demand-zero anonymous mapping: pages materialize (already zeroed) on
  // first touch, so neither construction nor destruction scales with the
  // configured guest size — only with the resident set.
  void* p = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
  VPIM_CHECK(p != MAP_FAILED, "cannot map guest RAM");
  base_ = static_cast<std::uint8_t*>(p);
  mapped_ = true;
#else
  base_ = new std::uint8_t[bytes]();
  mapped_ = false;
#endif
}

GuestMemory::~GuestMemory() {
  if (base_ == nullptr) return;
#ifdef VPIM_GUEST_MEMORY_MMAP
  if (mapped_) {
    ::munmap(base_, size_);
    return;
  }
#endif
  delete[] base_;
}

GuestMemory::GuestMemory(GuestMemory&& other) noexcept
    : base_(std::exchange(other.base_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      mapped_(other.mapped_),
      bump_(other.bump_) {}

GuestMemory& GuestMemory::operator=(GuestMemory&& other) noexcept {
  if (this != &other) {
    this->~GuestMemory();
    base_ = std::exchange(other.base_, nullptr);
    size_ = std::exchange(other.size_, 0);
    mapped_ = other.mapped_;
    bump_ = other.bump_;
  }
  return *this;
}

std::span<std::uint8_t> GuestMemory::alloc(std::uint64_t bytes) {
  const std::uint64_t rounded =
      (bytes + kGuestPageSize - 1) / kGuestPageSize * kGuestPageSize;
  VPIM_CHECK(bump_ + rounded <= size_, "guest RAM exhausted");
  std::uint8_t* p = base_ + bump_;
  bump_ += rounded;
  return {p, bytes};
}

std::uint8_t* GuestMemory::hva_of(std::uint64_t gpa) {
  VPIM_CHECK(gpa < size_, "GPA out of guest RAM");
  return base_ + gpa;
}

const std::uint8_t* GuestMemory::hva_of(std::uint64_t gpa) const {
  VPIM_CHECK(gpa < size_, "GPA out of guest RAM");
  return base_ + gpa;
}

std::uint8_t* GuestMemory::hva_range(std::uint64_t gpa, std::uint64_t len) {
  VPIM_CHECK(len <= size_ && gpa <= size_ - len,
             "GPA range leaves guest RAM");
  return base_ + gpa;
}

const std::uint8_t* GuestMemory::hva_range(std::uint64_t gpa,
                                           std::uint64_t len) const {
  VPIM_CHECK(len <= size_ && gpa <= size_ - len,
             "GPA range leaves guest RAM");
  return base_ + gpa;
}

std::uint64_t GuestMemory::gpa_of(const std::uint8_t* hva) const {
  VPIM_CHECK(contains(hva), "pointer is not into guest RAM");
  return static_cast<std::uint64_t>(hva - base_);
}

}  // namespace vpim::guest
