#include "guest/guest_memory.h"

namespace vpim::guest {

GuestMemory::GuestMemory(std::uint64_t bytes) : backing_(bytes, 0) {
  VPIM_CHECK(bytes % kGuestPageSize == 0,
             "guest RAM must be page-aligned in size");
  VPIM_CHECK(bytes >= 2 * kGuestPageSize, "guest RAM too small");
}

std::span<std::uint8_t> GuestMemory::alloc(std::uint64_t bytes) {
  const std::uint64_t rounded =
      (bytes + kGuestPageSize - 1) / kGuestPageSize * kGuestPageSize;
  VPIM_CHECK(bump_ + rounded <= backing_.size(), "guest RAM exhausted");
  std::uint8_t* p = backing_.data() + bump_;
  bump_ += rounded;
  return {p, bytes};
}

std::uint8_t* GuestMemory::hva_of(std::uint64_t gpa) {
  VPIM_CHECK(gpa < backing_.size(), "GPA out of guest RAM");
  return backing_.data() + gpa;
}

const std::uint8_t* GuestMemory::hva_of(std::uint64_t gpa) const {
  VPIM_CHECK(gpa < backing_.size(), "GPA out of guest RAM");
  return backing_.data() + gpa;
}

std::uint8_t* GuestMemory::hva_range(std::uint64_t gpa, std::uint64_t len) {
  VPIM_CHECK(len <= backing_.size() && gpa <= backing_.size() - len,
             "GPA range leaves guest RAM");
  return backing_.data() + gpa;
}

const std::uint8_t* GuestMemory::hva_range(std::uint64_t gpa,
                                           std::uint64_t len) const {
  VPIM_CHECK(len <= backing_.size() && gpa <= backing_.size() - len,
             "GPA range leaves guest RAM");
  return backing_.data() + gpa;
}

std::uint64_t GuestMemory::gpa_of(const std::uint8_t* hva) const {
  VPIM_CHECK(contains(hva), "pointer is not into guest RAM");
  return static_cast<std::uint64_t>(hva - backing_.data());
}

}  // namespace vpim::guest
