// Guest RAM: a flat guest-physical address space with a page allocator.
//
// Application buffers inside a VM are allocated here so the vUPMEM frontend
// can resolve them to guest physical page lists (the Fig 6/7 transfer
// matrix) and the backend can translate GPA -> HVA without copying.
//
// The backing store is a demand-zero anonymous mapping, not an eagerly
// zero-filled vector: a 2 GiB guest only pays (host RAM and wall-clock) for
// the pages it actually touches, exactly like a real VMM's memslots. This
// removes the dominant fixed cost of constructing a VM — benches build a
// fresh VM per measurement, and memset'ing gigabytes per point used to dwarf
// the request path being measured.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/error.h"
#include "common/units.h"

namespace vpim::guest {

inline constexpr std::uint64_t kGuestPageSize = 4 * kKiB;

class GuestMemory {
 public:
  explicit GuestMemory(std::uint64_t bytes);
  ~GuestMemory();

  GuestMemory(const GuestMemory&) = delete;
  GuestMemory& operator=(const GuestMemory&) = delete;
  GuestMemory(GuestMemory&& other) noexcept;
  GuestMemory& operator=(GuestMemory&& other) noexcept;

  std::uint64_t size() const { return size_; }

  // Allocates a guest-contiguous buffer (page-granular bump allocator).
  std::span<std::uint8_t> alloc(std::uint64_t bytes);

  // Host virtual address of a GPA (bounds-checked).
  std::uint8_t* hva_of(std::uint64_t gpa);
  const std::uint8_t* hva_of(std::uint64_t gpa) const;

  // Host virtual address of [gpa, gpa+len); rejects ranges that leave
  // guest RAM (overflow-safe). The backend must use this — not hva_of —
  // for every guest-supplied buffer, or a GPA near the end of RAM would
  // let the guest read or write past the backing allocation.
  std::uint8_t* hva_range(std::uint64_t gpa, std::uint64_t len);
  const std::uint8_t* hva_range(std::uint64_t gpa, std::uint64_t len) const;

  // Guest physical address of a pointer into guest RAM.
  std::uint64_t gpa_of(const std::uint8_t* hva) const;

  bool contains(const std::uint8_t* hva) const {
    return hva >= base_ && hva < base_ + size_;
  }

  std::uint64_t allocated_bytes() const { return bump_; }

 private:
  std::uint8_t* base_ = nullptr;
  std::uint64_t size_ = 0;
  bool mapped_ = false;  // base_ came from mmap (else operator new[])
  std::uint64_t bump_ = kGuestPageSize;  // GPA 0 reserved (null-ish)
};

}  // namespace vpim::guest
