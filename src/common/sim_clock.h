// Deterministic virtual clock.
//
// The whole system runs on virtual time: every modeled operation advances
// the clock by its calibrated cost instead of sleeping. Parallel sections
// are expressed with run_parallel(), which executes branches sequentially
// (the simulation itself is single-threaded on the data path) but advances
// the clock by the *maximum* branch duration, i.e. ideal parallel timing.
#pragma once

#include <algorithm>
#include <functional>
#include <span>
#include <vector>

#include "common/error.h"
#include "common/units.h"

namespace vpim {

class SimClock {
 public:
  SimNs now() const { return now_; }

  void advance(SimNs ns) { now_ += ns; }

  // Rewinds/forwards the clock; only run_parallel and checkpointed scopes
  // should need this.
  void set(SimNs ns) { now_ = ns; }

  // Earliest virtual time any future event can occur: now(), except inside
  // run_parallel where later branches restart from the section's start.
  // Resource models (e.g. the VMM event loop) may prune bookkeeping that
  // ends before this point.
  SimNs floor() const { return parallel_depth_ > 0 ? floor_ : now_; }

  // Runs every branch from the same virtual start time and leaves the clock
  // at the latest branch end (ideal parallelism). Returns the per-branch
  // durations, in branch order, for callers that want a timeline (Fig 16).
  std::vector<SimNs> run_parallel(
      std::span<const std::function<void()>> branches) {
    const SimNs start = now_;
    const SimNs saved_floor = floor_;
    if (parallel_depth_++ == 0) floor_ = start;
    SimNs end = start;
    std::vector<SimNs> durations;
    durations.reserve(branches.size());
    for (const auto& branch : branches) {
      now_ = start;
      branch();
      VPIM_CHECK(now_ >= start, "branch rewound the clock");
      durations.push_back(now_ - start);
      end = std::max(end, now_);
    }
    now_ = end;
    if (--parallel_depth_ == 0) floor_ = saved_floor;
    return durations;
  }

 private:
  SimNs now_ = 0;
  SimNs floor_ = 0;
  int parallel_depth_ = 0;
};

// Measures the virtual duration of a scope.
class ScopedTimer {
 public:
  ScopedTimer(const SimClock& clock, SimNs& accumulator)
      : clock_(clock), accumulator_(accumulator), start_(clock.now()) {}
  ~ScopedTimer() { accumulator_ += clock_.now() - start_; }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  const SimClock& clock_;
  SimNs& accumulator_;
  SimNs start_;
};

}  // namespace vpim
