// Byte-size and time units used throughout the vPIM simulator.
#pragma once

#include <cstdint>

namespace vpim {

inline constexpr std::uint64_t kKiB = 1024;
inline constexpr std::uint64_t kMiB = 1024 * kKiB;
inline constexpr std::uint64_t kGiB = 1024 * kMiB;

// Virtual time is expressed in nanoseconds everywhere.
using SimNs = std::uint64_t;

inline constexpr SimNs kUs = 1000;            // 1 microsecond in ns
inline constexpr SimNs kMs = 1000 * kUs;      // 1 millisecond in ns
inline constexpr SimNs kSec = 1000 * kMs;     // 1 second in ns

constexpr double ns_to_ms(SimNs ns) { return static_cast<double>(ns) / 1e6; }
constexpr double ns_to_s(SimNs ns) { return static_cast<double>(ns) / 1e9; }

}  // namespace vpim
