// Time-accounting buckets matching the paper's two breakdowns (§5.1):
//  - application-centric: CPU-DPU / DPU / Inter-DPU / DPU-CPU (Fig 8);
//  - driver-centric: CI / read-from-rank / write-to-rank ops (Fig 12) and
//    the write-to-rank step breakdown (Fig 13).
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "common/sim_clock.h"
#include "common/units.h"

namespace vpim {

// Application-centric segments.
enum class Segment : std::uint8_t { kCpuDpu = 0, kDpu, kInterDpu, kDpuCpu };
inline constexpr std::array<std::string_view, 4> kSegmentNames = {
    "CPU-DPU", "DPU", "Inter-DPU", "DPU-CPU"};

struct TimeBreakdown {
  std::array<SimNs, 4> segment{};

  SimNs& operator[](Segment s) { return segment[static_cast<std::size_t>(s)]; }
  SimNs operator[](Segment s) const {
    return segment[static_cast<std::size_t>(s)];
  }
  SimNs total() const {
    SimNs t = 0;
    for (SimNs s : segment) t += s;
    return t;
  }
  TimeBreakdown& operator+=(const TimeBreakdown& o) {
    for (std::size_t i = 0; i < segment.size(); ++i) segment[i] += o.segment[i];
    return *this;
  }
};

// Tags virtual-time spent inside a scope with an application segment.
class SegmentScope {
 public:
  SegmentScope(const SimClock& clock, TimeBreakdown& breakdown, Segment seg)
      : timer_(clock, breakdown[seg]) {}

 private:
  ScopedTimer timer_;
};

// Driver-centric operation classes (Fig 12).
enum class RankOp : std::uint8_t { kCi = 0, kReadFromRank, kWriteToRank };
inline constexpr std::size_t kNumRankOps = 3;
inline constexpr std::array<std::string_view, kNumRankOps> kRankOpNames = {
    "CI", "R-rank", "W-rank"};

struct OpBreakdown {
  std::array<SimNs, 3> op_time{};
  std::array<std::uint64_t, 3> op_count{};

  void add(RankOp op, SimNs t) {
    op_time[static_cast<std::size_t>(op)] += t;
    op_count[static_cast<std::size_t>(op)] += 1;
  }
  SimNs time(RankOp op) const { return op_time[static_cast<std::size_t>(op)]; }
  std::uint64_t count(RankOp op) const {
    return op_count[static_cast<std::size_t>(op)];
  }
};

// Steps of a write-to-rank operation (Fig 13): page management, matrix
// serialization, virtio interrupt handling, matrix deserialization, and the
// data transfer to UPMEM.
enum class WrankStep : std::uint8_t {
  kPageMgmt = 0,
  kSerialize,
  kInterrupt,
  kDeserialize,
  kTransferData
};
inline constexpr std::array<std::string_view, 5> kWrankStepNames = {
    "Page", "Ser", "Int", "Deser", "T-data"};

struct StepBreakdown {
  std::array<SimNs, 5> step_time{};

  void add(WrankStep s, SimNs t) {
    step_time[static_cast<std::size_t>(s)] += t;
  }
  SimNs time(WrankStep s) const {
    return step_time[static_cast<std::size_t>(s)];
  }
  SimNs total() const {
    SimNs t = 0;
    for (SimNs s : step_time) t += s;
    return t;
  }
};

}  // namespace vpim
