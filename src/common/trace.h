// Operation tracing.
//
// A Tracer records timestamped device operations (virtual time) so users
// can see *why* a workload behaves the way it does — which ops were
// batched, where prefetch fills happened, how big each message was. The
// vUPMEM frontend records into an attached tracer; `vpim-sim --trace out.csv`
// dumps one row per event.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/units.h"

namespace vpim {

struct TraceEvent {
  SimNs start = 0;
  SimNs duration = 0;
  std::string kind;            // e.g. "write", "read.fill", "ci.launch"
  std::uint64_t bytes = 0;     // payload size, if any
  std::uint32_t entries = 0;   // DPUs touched
};

class Tracer {
 public:
  void record(std::string_view kind, SimNs start, SimNs duration,
              std::uint64_t bytes = 0, std::uint32_t entries = 0) {
    events_.push_back({start, duration, std::string(kind), bytes, entries});
  }

  const std::vector<TraceEvent>& events() const { return events_; }
  void clear() { events_.clear(); }

  // One CSV row per event: start_us,duration_us,kind,bytes,entries.
  void dump_csv(std::ostream& os) const {
    os << "start_us,duration_us,kind,bytes,entries\n";
    for (const TraceEvent& e : events_) {
      os << static_cast<double>(e.start) / 1000.0 << ','
         << static_cast<double>(e.duration) / 1000.0 << ',' << e.kind
         << ',' << e.bytes << ',' << e.entries << '\n';
    }
  }

  // Total time attributed to events whose kind starts with `prefix`.
  SimNs total_for(std::string_view prefix) const {
    SimNs total = 0;
    for (const TraceEvent& e : events_) {
      if (std::string_view(e.kind).substr(0, prefix.size()) == prefix) {
        total += e.duration;
      }
    }
    return total;
  }

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace vpim
