// Chrome trace_event JSON exporter: renders a Tracer's span stream for
// chrome://tracing / Perfetto, one lane per stack layer plus one lane per
// physical rank. `vpim-sim --chrome-trace out.json` and the fig12 bench
// both use this.
#pragma once

#include <ostream>

#include "common/obs/trace.h"

namespace vpim::obs {

void export_chrome_trace(const Tracer& tracer, std::ostream& os);

}  // namespace vpim::obs
