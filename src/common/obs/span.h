// Span model of the observability layer (DESIGN.md §"Observability").
//
// A Span is one timed segment of a vPIM request on the virtual-time axis,
// attributed to a fixed *kind* (an enumerated category — never a free-form
// string, so aggregation cannot alias across kinds the way the old
// prefix-matched CSV tracer did) and through it to a *layer* of the stack:
// frontend request -> wire (de)serialization -> virtio transport -> backend
// op -> driver transfer -> rank/DPU compute.
//
// Spans carry request-scoped causal ids: every device-file operation opens
// a request, and every span recorded while it is in flight — including the
// backend/driver/rank spans on the far side of the virtio queue — shares
// its request id. Span ids are derived from the request sequence number
// (never from wall clock or addresses), so two runs of the same workload
// produce bit-identical span streams at any VPIM_THREADS.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "common/units.h"

namespace vpim::obs {

// Every kind of span the stack records. Adding a kind requires updating
// kSpanKindNames and (if it aggregates differently) layer_of/category_of.
enum class SpanKind : std::uint8_t {
  // Frontend device-file operations (roots of a request).
  kWrite = 0,     // bulk write-to-rank
  kWriteBatched,  // write absorbed by the batch buffer
  kWriteFlush,    // batch-buffer flush message
  kRead,          // uncached read-from-rank
  kReadFill,      // prefetch-cache fill message
  kReadCached,    // read served (at least partly) from the prefetch cache
  kCiLoad,
  kCiLaunch,
  kCiStatus,
  kCiSymbol,
  kControl,  // open/close/migrate/suspend/resume control round trips
  kPageMgmt,  // user pages -> kernel page lists (Fig 13 "Page")
  // Wire format.
  kSerialize,    // frontend matrix -> descriptor chain (Fig 13 "Ser")
  kDeserialize,  // backend chain parse + GPA->HVA (Fig 13 "Deser")
  // Virtio transport.
  kVirtioRoundtrip,  // notify -> device handling -> completion IRQ
  // Backend device model.
  kBackendRequest,  // one popped descriptor chain, end to end
  kTransferData,    // scatter/gather data movement (Fig 13 "T-data")
  kBroadcast,       // detected same-payload broadcast
  kBatchApply,      // replay of a batched-write flush
  // Driver (performance-mode rank mapping).
  kDriverXfer,
  kDriverCi,
  // Rank / DPU compute.
  kRankLaunch,  // one ci_launch on one rank (duration = slowest DPU)
  kDpuCompute,  // one DPU's kernel execution inside a launch
  // SQ/CQ pipeline (ISSUE 7). kSqSlot covers one submission slot from
  // staging to batch completion (entries = slot index, one Chrome lane per
  // slot); kCqDrain is the poll_completions root.
  kSqSlot,
  kCqDrain,
  // Overload protection (ISSUE 8): the admission decision on the
  // try_submit path — token-bucket + budget check, shed or admitted.
  kAdmission,
  // KV service (ISSUE 10): one executed batch (enqueue -> DPU cycles ->
  // result parse) and one partition migration of the rebalancer.
  kKvBatch,
  kKvRebalance,
};

inline constexpr std::size_t kNumSpanKinds =
    static_cast<std::size_t>(SpanKind::kKvRebalance) + 1;

inline constexpr std::array<std::string_view, kNumSpanKinds> kSpanKindNames =
    {"write",          "write.batched",    "write.flush",
     "read",           "read.fill",        "read.cached",
     "ci.load",        "ci.launch",        "ci.status",
     "ci.symbol",      "control",          "frontend.page_mgmt",
     "wire.serialize", "wire.deserialize", "virtio.roundtrip",
     "backend.request", "backend.transfer", "backend.broadcast",
     "backend.batch_apply", "driver.xfer", "driver.ci",
     "rank.launch",    "dpu.compute",      "sq.slot",
     "cq.drain",       "admission",        "kv.batch",
     "kv.rebalance"};

inline constexpr std::string_view kind_name(SpanKind k) {
  return kSpanKindNames[static_cast<std::size_t>(k)];
}

// The stack layer a kind belongs to; the Chrome exporter gives each layer
// its own lane (and each rank its own lane within the rank layer).
enum class Layer : std::uint8_t {
  kFrontend = 0,
  kWire,
  kVirtio,
  kBackend,
  kDriver,
  kRank,
  kAdmission,  // ISSUE 8: admission decisions get their own trace lane
  kKv,         // ISSUE 10: KV batches and rebalances get their own lane
};

inline constexpr std::array<std::string_view, 8> kLayerNames = {
    "frontend", "wire",   "virtio",    "backend",
    "driver",   "rank",   "admission", "kv"};

inline constexpr Layer layer_of(SpanKind k) {
  switch (k) {
    case SpanKind::kAdmission:
      return Layer::kAdmission;
    case SpanKind::kKvBatch:
    case SpanKind::kKvRebalance:
      return Layer::kKv;
    case SpanKind::kSerialize:
    case SpanKind::kDeserialize:
      return Layer::kWire;
    case SpanKind::kVirtioRoundtrip:
    case SpanKind::kSqSlot:
      return Layer::kVirtio;
    case SpanKind::kBackendRequest:
    case SpanKind::kTransferData:
    case SpanKind::kBroadcast:
    case SpanKind::kBatchApply:
      return Layer::kBackend;
    case SpanKind::kDriverXfer:
    case SpanKind::kDriverCi:
      return Layer::kDriver;
    case SpanKind::kRankLaunch:
    case SpanKind::kDpuCompute:
      return Layer::kRank;
    default:
      return Layer::kFrontend;
  }
}

// Aggregation buckets matching the paper's driver-centric op classes
// (Fig 12): a root span is a CI, read or write *operation*; everything
// nested under it is internal detail. This is the typed replacement for
// the old Tracer::total_for("read") prefix match, which silently counted
// "read.fill" (an internal fill message, already inside its parent's
// duration) as a second read op.
enum class Category : std::uint8_t {
  kCi = 0,
  kRead,
  kWrite,
  kControl,
  kInternal,
};

inline constexpr std::array<std::string_view, 5> kCategoryNames = {
    "CI", "R-rank", "W-rank", "control", "internal"};

inline constexpr Category category_of(SpanKind k) {
  switch (k) {
    case SpanKind::kWrite:
    case SpanKind::kWriteBatched:
      return Category::kWrite;
    case SpanKind::kRead:
    case SpanKind::kReadCached:
      return Category::kRead;
    case SpanKind::kCiLoad:
    case SpanKind::kCiLaunch:
    case SpanKind::kCiStatus:
    case SpanKind::kCiSymbol:
      return Category::kCi;
    case SpanKind::kControl:
      return Category::kControl;
    default:
      return Category::kInternal;
  }
}

using SpanId = std::uint64_t;

inline constexpr std::uint32_t kNoRank = 0xFFFFFFFFu;
inline constexpr std::uint32_t kNoTenant = 0xFFFFFFFFu;

struct Span {
  // (request << kRequestShift) | sequence-within-request: stable across
  // thread counts because requests and span begins happen on the serial
  // control path.
  SpanId id = 0;
  SpanId parent = 0;          // 0 = root span
  std::uint64_t request = 0;  // causal request id (0 = outside a request)
  SpanKind kind = SpanKind::kControl;
  SimNs start = 0;     // virtual time
  SimNs duration = 0;  // virtual time
  std::uint64_t bytes = 0;
  std::uint32_t entries = 0;        // DPUs touched
  std::uint32_t rank = kNoRank;     // physical rank, when known
  std::uint32_t tenant = kNoTenant;  // interned device/tenant tag
};

inline constexpr unsigned kRequestShift = 16;

}  // namespace vpim::obs
