// Span-based tracer (see span.h for the model and DESIGN.md for the rules).
//
// Recording discipline — the three invariants that keep span streams
// bit-identical at any VPIM_THREADS:
//   1. begin_request()/begin_span()/end_span() are only legal on the serial
//      control path (the same contract SimClock already imposes). Thread-pool
//      bodies must never touch the tracer directly.
//   2. Work fanned out across the pool records through a FanoutScope: each
//      index writes its own pre-sized slot (indices are partitioned by the
//      pool, so no two workers share a slot), and the scope merges the slots
//      in index order back on the serial path when it closes.
//   3. Ids derive from the request sequence number — never from wall clock,
//      thread ids, or addresses.
//
// When no tracer is attached (the common case), every recording site is a
// single null-pointer test.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/obs/span.h"
#include "common/sim_clock.h"
#include "common/units.h"

namespace vpim::obs {

class Tracer {
 public:
  // Opens a new request scope: subsequent spans carry the returned causal
  // id until the next begin_request(). Called once per device-file op.
  std::uint64_t begin_request() {
    ++request_;
    seq_ = 0;
    return request_;
  }

  std::uint64_t current_request() const { return request_; }

  // Starts a span at `start` and pushes it on the parent stack. The span is
  // appended to the stream when end_span() pops it (completion order).
  SpanId begin_span(SpanKind kind, SimNs start) {
    Span s;
    s.id = next_id();
    s.parent = open_.empty() ? 0 : open_.back().id;
    s.request = request_;
    s.kind = kind;
    s.start = start;
    open_.push_back(s);
    return s.id;
  }

  // Ends the innermost open span. Clamped to zero if the clock was rewound
  // below the span's start (parallel-replay branches may do that).
  Span& end_span(SimNs end) {
    Span s = open_.back();
    open_.pop_back();
    s.duration = end >= s.start ? end - s.start : 0;
    spans_.push_back(s);
    return spans_.back();
  }

  // Mutators for the innermost open span (e.g. a frontend op discovering
  // late that it was batched, or a backend span adopting the causal id it
  // read off the wire).
  Span& top() { return open_.back(); }
  bool has_open() const { return !open_.empty(); }

  // Records an already-measured span (no nesting) under the current parent.
  void record(SpanKind kind, SimNs start, SimNs duration,
              std::uint64_t bytes = 0, std::uint32_t entries = 0,
              std::uint32_t rank = kNoRank, std::uint32_t tenant = kNoTenant) {
    Span s;
    s.id = next_id();
    s.parent = open_.empty() ? 0 : open_.back().id;
    s.request = request_;
    s.kind = kind;
    s.start = start;
    s.duration = duration;
    s.bytes = bytes;
    s.entries = entries;
    s.rank = rank;
    s.tenant = tenant;
    spans_.push_back(s);
  }

  // Interns a tenant/device tag, returning its stable index. Tags are
  // interned on the serial path in first-use order, so indices are
  // deterministic for a given workload.
  std::uint32_t intern(std::string_view tag) {
    for (std::uint32_t i = 0; i < tenants_.size(); ++i) {
      if (tenants_[i] == tag) return i;
    }
    tenants_.emplace_back(tag);
    return static_cast<std::uint32_t>(tenants_.size() - 1);
  }

  const std::vector<std::string>& tenants() const { return tenants_; }
  const std::vector<Span>& spans() const { return spans_; }

  void clear() {
    spans_.clear();
    open_.clear();
    tenants_.clear();
    request_ = 0;
    seq_ = 0;
  }

  // Total virtual time in spans of exactly `kind` (any nesting depth).
  SimNs total_for(SpanKind kind) const {
    SimNs total = 0;
    for (const Span& s : spans_) {
      if (s.kind == kind) total += s.duration;
    }
    return total;
  }

  // Total virtual time in *root* spans of the category — i.e. whole
  // device-file operations, matching DeviceStats::ops and Fig 12. Nested
  // spans (fills, flushes, wire/virtio/backend segments) are already part
  // of their root's duration and are deliberately not double counted.
  SimNs total_for(Category cat) const {
    SimNs total = 0;
    for (const Span& s : spans_) {
      if (s.parent == 0 && category_of(s.kind) == cat) total += s.duration;
    }
    return total;
  }

  std::uint64_t count_for(Category cat) const {
    std::uint64_t n = 0;
    for (const Span& s : spans_) {
      if (s.parent == 0 && category_of(s.kind) == cat) ++n;
    }
    return n;
  }

  // CSV exporter, column-compatible with the old flat tracer plus the new
  // causal columns: start_us,duration_us,kind,bytes,entries,id,parent,
  // request,layer,rank,tenant.
  void dump_csv(std::ostream& os) const;

  // Deterministic one-line-per-span digest used by determinism_test to
  // diff streams across thread counts (and handy in goldens).
  std::string digest() const;

  // Per-index span slots for thread-pool fan-out. Workers call record()
  // with their index; the destructor (or merge()) replays the slots in
  // index order on the serial path. A null tracer makes every call a no-op.
  class FanoutScope {
   public:
    FanoutScope(Tracer* t, std::size_t slots) : t_(t) {
      if (t_ != nullptr) slots_.resize(slots);
    }
    FanoutScope(const FanoutScope&) = delete;
    FanoutScope& operator=(const FanoutScope&) = delete;
    ~FanoutScope() { merge(); }

    bool active() const { return t_ != nullptr; }

    // Safe to call concurrently for distinct indices.
    void record(std::size_t index, SpanKind kind, SimNs start, SimNs duration,
                std::uint64_t bytes = 0, std::uint32_t entries = 0,
                std::uint32_t rank = kNoRank) {
      if (t_ == nullptr) return;
      Slot& slot = slots_[index];
      slot.used = true;
      slot.span.kind = kind;
      slot.span.start = start;
      slot.span.duration = duration;
      slot.span.bytes = bytes;
      slot.span.entries = entries;
      slot.span.rank = rank;
    }

    void merge() {
      if (t_ == nullptr) return;
      for (const Slot& slot : slots_) {
        if (!slot.used) continue;
        t_->record(slot.span.kind, slot.span.start, slot.span.duration,
                   slot.span.bytes, slot.span.entries, slot.span.rank);
      }
      slots_.clear();
      t_ = nullptr;
    }

   private:
    struct Slot {
      bool used = false;
      Span span;
    };
    Tracer* t_;
    std::vector<Slot> slots_;
  };

 private:
  SpanId next_id() {
    ++seq_;
    return (request_ << kRequestShift) | seq_;
  }

  std::vector<Span> spans_;
  std::vector<Span> open_;  // parent stack
  std::vector<std::string> tenants_;
  std::uint64_t request_ = 0;
  std::uint64_t seq_ = 0;  // span sequence within the current request
};

// RAII span tied to a SimClock: begins at clock.now() on construction, ends
// at clock.now() on destruction. All operations are no-ops when `tracer`
// is null, so instrumented code needs no branches of its own.
class ScopedSpan {
 public:
  ScopedSpan(Tracer* tracer, const SimClock& clock, SpanKind kind)
      : tracer_(tracer), clock_(clock) {
    if (tracer_ != nullptr) tracer_->begin_span(kind, clock_.now());
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() { close(); }

  // Ends the span now instead of at scope exit (e.g. to open a sibling
  // span in the same scope). Idempotent; the destructor becomes a no-op.
  void close() {
    if (tracer_ != nullptr) tracer_->end_span(clock_.now());
    tracer_ = nullptr;
  }

  void set_kind(SpanKind kind) {
    if (tracer_ != nullptr) tracer_->top().kind = kind;
  }
  void set_bytes(std::uint64_t bytes) {
    if (tracer_ != nullptr) tracer_->top().bytes = bytes;
  }
  void add_bytes(std::uint64_t bytes) {
    if (tracer_ != nullptr) tracer_->top().bytes += bytes;
  }
  void set_entries(std::uint32_t entries) {
    if (tracer_ != nullptr) tracer_->top().entries = entries;
  }
  void set_rank(std::uint32_t rank) {
    if (tracer_ != nullptr) tracer_->top().rank = rank;
  }
  void set_tenant(std::uint32_t tenant) {
    if (tracer_ != nullptr) tracer_->top().tenant = tenant;
  }
  // Adopts a causal id carried in-band (e.g. WireRequest::request_id) when
  // the span was opened outside the originating request scope.
  void set_request(std::uint64_t request) {
    if (tracer_ != nullptr) tracer_->top().request = request;
  }

 private:
  Tracer* tracer_;
  const SimClock& clock_;
};

// ScopedSpan that also opens a fresh request scope: used by the frontend
// at every device-file operation boundary.
class RequestSpan {
 public:
  RequestSpan(Tracer* tracer, const SimClock& clock, SpanKind kind,
              std::uint32_t tenant = kNoTenant)
      : tracer_(tracer), clock_(clock) {
    if (tracer_ != nullptr) {
      tracer_->begin_request();
      tracer_->begin_span(kind, clock_.now());
      tracer_->top().tenant = tenant;
    }
  }
  RequestSpan(const RequestSpan&) = delete;
  RequestSpan& operator=(const RequestSpan&) = delete;
  ~RequestSpan() {
    if (tracer_ != nullptr) tracer_->end_span(clock_.now());
  }

  void set_kind(SpanKind kind) {
    if (tracer_ != nullptr) tracer_->top().kind = kind;
  }
  void set_bytes(std::uint64_t bytes) {
    if (tracer_ != nullptr) tracer_->top().bytes = bytes;
  }
  void set_entries(std::uint32_t entries) {
    if (tracer_ != nullptr) tracer_->top().entries = entries;
  }

 private:
  Tracer* tracer_;
  const SimClock& clock_;
};

}  // namespace vpim::obs
