// Process-wide metrics registry (DESIGN.md §"Observability").
//
// Counters, gauges and virtual-time histograms with deterministic
// semantics: histogram buckets are fixed log2 boundaries (bucket index =
// bit_width of the value), series are keyed by explicit label sets and
// enumerated in registration order, and nothing reads the wall clock — so
// two runs of the same workload export byte-identical text at any
// VPIM_THREADS. Instruments must only be touched from the serial control
// path (the SimClock contract); thread-pool bodies aggregate locally and
// publish on the serial path.
//
// Live stats structs that predate the registry (DeviceStats, ManagerStats)
// are published through collectors: a callback registered with
// add_collector() that contributes point-in-time samples at export. That
// absorbs the scattered structs into one exporter without double
// bookkeeping on the hot path.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/units.h"

namespace vpim::obs {

using Labels = std::vector<std::pair<std::string, std::string>>;

class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(std::int64_t v) { value_ = v; }
  void add(std::int64_t d) { value_ += d; }
  std::int64_t value() const { return value_; }

 private:
  std::int64_t value_ = 0;
};

// Fixed log2-bucket histogram for virtual-time (or byte-size) samples.
// Bucket i counts values with bit_width(v) == i, i.e. upper bounds
// 0, 1, 3, 7, ..., 2^39-1; the last bucket is +Inf. 2^39 ns ≈ 9.2 min of
// virtual time, far beyond any single modeled operation.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 41;  // bit widths 0..40, then +Inf

  void observe(std::uint64_t v) {
    std::size_t b = 0;
    for (std::uint64_t x = v; x != 0; x >>= 1) ++b;  // bit_width
    if (b >= kBuckets) b = kBuckets;                 // +Inf bucket
    ++counts_[b];
    ++count_;
    sum_ += v;
  }

  // Inclusive upper bound of bucket i (the +Inf bucket has none).
  static std::uint64_t upper_bound(std::size_t i) {
    return i == 0 ? 0 : ((std::uint64_t{1} << i) - 1);
  }

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t bucket_count(std::size_t i) const { return counts_[i]; }

 private:
  std::uint64_t counts_[kBuckets + 1] = {};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
};

// A point-in-time sample sink passed to collectors at export time.
class Collection {
 public:
  void counter(std::string_view name, const Labels& labels,
               std::uint64_t value);
  void gauge(std::string_view name, const Labels& labels, std::int64_t value);

 private:
  friend class MetricsRegistry;
  struct Sample {
    std::string name;
    Labels labels;
    bool is_counter = true;
    std::int64_t value = 0;
  };
  std::vector<Sample> samples_;
};

class MetricsRegistry {
 public:
  // A family keeps at most this many labeled series; further label
  // combinations all fold into one overflow series labeled
  // {"overflow"="true"} so a label-cardinality bug cannot eat memory.
  static constexpr std::size_t kMaxSeriesPerFamily = 64;

  Counter& counter(std::string_view name, const Labels& labels = {});
  Gauge& gauge(std::string_view name, const Labels& labels = {});
  Histogram& histogram(std::string_view name, const Labels& labels = {});

  // Registers a live-stats collector; the returned handle unregisters on
  // destruction. Collectors run (in registration order) at every export.
  using Collector = std::function<void(Collection&)>;
  class CollectorHandle {
   public:
    CollectorHandle() = default;
    CollectorHandle(MetricsRegistry* reg, std::uint64_t id)
        : reg_(reg), id_(id) {}
    CollectorHandle(CollectorHandle&& o) noexcept
        : reg_(o.reg_), id_(o.id_) {
      o.reg_ = nullptr;
    }
    CollectorHandle& operator=(CollectorHandle&& o) noexcept {
      release();
      reg_ = o.reg_;
      id_ = o.id_;
      o.reg_ = nullptr;
      return *this;
    }
    CollectorHandle(const CollectorHandle&) = delete;
    CollectorHandle& operator=(const CollectorHandle&) = delete;
    ~CollectorHandle() { release(); }
    void release();

   private:
    MetricsRegistry* reg_ = nullptr;
    std::uint64_t id_ = 0;
  };
  CollectorHandle add_collector(Collector fn);

  // Prometheus text exposition format, deterministic ordering.
  std::string prometheus_text() const;
  // JSON snapshot of the same data.
  std::string json_snapshot() const;

  std::size_t family_count() const { return families_.size(); }

 private:
  friend class CollectorHandle;
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };
  struct Series {
    Labels labels;
    Counter counter;
    Gauge gauge;
    Histogram histogram;
  };
  // Deques keep references returned by counter()/gauge()/histogram()
  // stable while later registrations grow the registry.
  struct Family {
    std::string name;
    Kind kind;
    std::deque<Series> series;  // registration order
  };
  struct CollectorEntry {
    std::uint64_t id;
    Collector fn;
  };

  Family& family(std::string_view name, Kind kind);
  Series& series(Family& fam, const Labels& labels);
  void remove_collector(std::uint64_t id);

  std::deque<Family> families_;  // registration order
  std::vector<CollectorEntry> collectors_;
  std::uint64_t next_collector_id_ = 1;
};

}  // namespace vpim::obs
