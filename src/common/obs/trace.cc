#include "common/obs/trace.h"

#include <cinttypes>
#include <cstdio>

namespace vpim::obs {

void Tracer::dump_csv(std::ostream& os) const {
  os << "start_us,duration_us,kind,bytes,entries,id,parent,request,layer,"
        "rank,tenant\n";
  char buf[64];
  for (const Span& s : spans_) {
    std::snprintf(buf, sizeof(buf), "%.3f,%.3f",
                  static_cast<double>(s.start) / 1000.0,
                  static_cast<double>(s.duration) / 1000.0);
    os << buf << ',' << kind_name(s.kind) << ',' << s.bytes << ','
       << s.entries << ',' << s.id << ',' << s.parent << ',' << s.request
       << ',' << kLayerNames[static_cast<std::size_t>(layer_of(s.kind))]
       << ',';
    if (s.rank != kNoRank) os << s.rank;
    os << ',';
    if (s.tenant != kNoTenant && s.tenant < tenants_.size()) {
      os << tenants_[s.tenant];
    }
    os << '\n';
  }
}

std::string Tracer::digest() const {
  std::string out;
  out.reserve(spans_.size() * 48);
  char line[192];
  for (const Span& s : spans_) {
    std::snprintf(line, sizeof(line),
                  "%" PRIu64 " %" PRIu64 " %" PRIu64
                  " %s %" PRIu64 " %" PRIu64 " %" PRIu64 " %u %d %d\n",
                  s.id, s.parent, s.request,
                  std::string(kind_name(s.kind)).c_str(),
                  static_cast<std::uint64_t>(s.start),
                  static_cast<std::uint64_t>(s.duration), s.bytes, s.entries,
                  s.rank == kNoRank ? -1 : static_cast<int>(s.rank),
                  s.tenant == kNoTenant ? -1 : static_cast<int>(s.tenant));
    out += line;
  }
  return out;
}

}  // namespace vpim::obs
