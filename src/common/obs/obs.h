// Observability hub: the one object the whole stack shares.
//
// A Hub owns the process-wide MetricsRegistry and an attachable Tracer
// sink. The Host creates one and plumbs a pointer down through
// machine/ranks/devices (mirroring the FaultPlan plumbing); layers record
// through it. `tracer == nullptr` (the default) is the fast path: every
// span site reduces to one pointer test.
#pragma once

#include "common/obs/metrics.h"
#include "common/obs/trace.h"

namespace vpim::obs {

struct Hub {
  Tracer* tracer = nullptr;
  MetricsRegistry metrics;

  Tracer* trace() { return tracer; }
};

}  // namespace vpim::obs
