#include "common/obs/chrome_trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

namespace vpim::obs {

namespace {

// Lane (tid) assignment: layers 1..6 in stack order, ranks at 100 + index
// so rank lanes sort below the per-layer lanes in the viewer, and SQ slots
// at 200 + slot so the in-flight pipeline reads as one lane per slot.
constexpr int kRankLaneBase = 100;
constexpr int kSlotLaneBase = 200;

int lane_of(const Span& s) {
  const Layer layer = layer_of(s.kind);
  if (layer == Layer::kRank && s.rank != kNoRank) {
    return kRankLaneBase + static_cast<int>(s.rank);
  }
  if (s.kind == SpanKind::kSqSlot) {
    return kSlotLaneBase + static_cast<int>(s.entries);
  }
  return static_cast<int>(layer) + 1;
}

}  // namespace

void export_chrome_trace(const Tracer& tracer, std::ostream& os) {
  os << "{\"traceEvents\":[\n";
  bool first = true;
  // Lane-name metadata first: the fixed layer lanes, then every rank lane
  // the stream touches (in lane order for determinism).
  std::vector<int> rank_lanes;
  std::vector<int> slot_lanes;
  for (const Span& s : tracer.spans()) {
    const int lane = lane_of(s);
    if (lane < kRankLaneBase) continue;
    std::vector<int>& lanes =
        lane >= kSlotLaneBase ? slot_lanes : rank_lanes;
    bool seen = false;
    for (int l : lanes) seen = seen || l == lane;
    if (!seen) lanes.push_back(lane);
  }
  std::sort(rank_lanes.begin(), rank_lanes.end());
  std::sort(slot_lanes.begin(), slot_lanes.end());
  auto lane_meta = [&](int lane, const std::string& name) {
    if (!first) os << ",\n";
    first = false;
    os << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << lane
       << ",\"name\":\"thread_name\",\"args\":{\"name\":\"" << name
       << "\"}}";
  };
  for (std::size_t i = 0; i < kLayerNames.size(); ++i) {
    lane_meta(static_cast<int>(i) + 1, std::string(kLayerNames[i]));
  }
  for (int lane : rank_lanes) {
    lane_meta(lane, "rank " + std::to_string(lane - kRankLaneBase));
  }
  for (int lane : slot_lanes) {
    lane_meta(lane, "sq slot " + std::to_string(lane - kSlotLaneBase));
  }

  char buf[128];
  for (const Span& s : tracer.spans()) {
    if (!first) os << ",\n";
    first = false;
    // ts/dur are microseconds; three decimals keep nanosecond precision.
    std::snprintf(buf, sizeof(buf),
                  "\"ts\":%.3f,\"dur\":%.3f",
                  static_cast<double>(s.start) / 1000.0,
                  static_cast<double>(s.duration) / 1000.0);
    os << "{\"ph\":\"X\",\"pid\":1,\"tid\":" << lane_of(s) << ",\"name\":\""
       << kind_name(s.kind) << "\"," << buf << ",\"args\":{\"id\":" << s.id
       << ",\"parent\":" << s.parent << ",\"request\":" << s.request
       << ",\"bytes\":" << s.bytes << ",\"entries\":" << s.entries;
    if (s.rank != kNoRank) os << ",\"rank\":" << s.rank;
    if (s.tenant != kNoTenant && s.tenant < tracer.tenants().size()) {
      os << ",\"tenant\":\"" << tracer.tenants()[s.tenant] << '"';
    }
    os << "}}";
  }
  os << "\n],\"displayTimeUnit\":\"ns\"}\n";
}

}  // namespace vpim::obs
