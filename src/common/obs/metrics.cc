#include "common/obs/metrics.h"

#include <sstream>

namespace vpim::obs {

namespace {

// Prometheus text exposition: label values escape backslash, double
// quote, and newline (and \r, which would otherwise split the line).
void append_prom_escaped(std::string& out, std::string_view v) {
  for (char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      default: out += c; break;
    }
  }
}

// JSON string escaping per RFC 8259: quote, backslash, and all control
// characters below 0x20.
void append_json_escaped(std::string& out, std::string_view v) {
  static constexpr char kHex[] = "0123456789abcdef";
  for (char c : v) {
    const auto u = static_cast<unsigned char>(c);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (u < 0x20) {
          out += "\\u00";
          out += kHex[u >> 4];
          out += kHex[u & 0xF];
        } else {
          out += c;
        }
        break;
    }
  }
}

void append_labels(std::string& out, const Labels& labels) {
  if (labels.empty()) return;
  out += '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    append_prom_escaped(out, v);
    out += '"';
  }
  out += '}';
}

void append_labels_json(std::string& out, const Labels& labels) {
  out += '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += '"';
    append_json_escaped(out, k);
    out += "\":\"";
    append_json_escaped(out, v);
    out += '"';
  }
  out += '}';
}

const Labels kOverflowLabels = {{"overflow", "true"}};

}  // namespace

void Collection::counter(std::string_view name, const Labels& labels,
                         std::uint64_t value) {
  samples_.push_back(
      {std::string(name), labels, true, static_cast<std::int64_t>(value)});
}

void Collection::gauge(std::string_view name, const Labels& labels,
                       std::int64_t value) {
  samples_.push_back({std::string(name), labels, false, value});
}

MetricsRegistry::Family& MetricsRegistry::family(std::string_view name,
                                                 Kind kind) {
  for (Family& f : families_) {
    if (f.name == name) return f;
  }
  families_.push_back({std::string(name), kind, {}});
  return families_.back();
}

MetricsRegistry::Series& MetricsRegistry::series(Family& fam,
                                                 const Labels& labels) {
  for (Series& s : fam.series) {
    if (s.labels == labels) return s;
  }
  if (fam.series.size() >= kMaxSeriesPerFamily) {
    // Cardinality limit: everything beyond the cap shares one overflow
    // series (created on first overflow, so it counts toward the cap + 1).
    for (Series& s : fam.series) {
      if (s.labels == kOverflowLabels) return s;
    }
    fam.series.push_back({kOverflowLabels, {}, {}, {}});
    return fam.series.back();
  }
  fam.series.push_back({labels, {}, {}, {}});
  return fam.series.back();
}

Counter& MetricsRegistry::counter(std::string_view name,
                                  const Labels& labels) {
  return series(family(name, Kind::kCounter), labels).counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name, const Labels& labels) {
  return series(family(name, Kind::kGauge), labels).gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      const Labels& labels) {
  return series(family(name, Kind::kHistogram), labels).histogram;
}

MetricsRegistry::CollectorHandle MetricsRegistry::add_collector(
    Collector fn) {
  const std::uint64_t id = next_collector_id_++;
  collectors_.push_back({id, std::move(fn)});
  return CollectorHandle(this, id);
}

void MetricsRegistry::remove_collector(std::uint64_t id) {
  for (std::size_t i = 0; i < collectors_.size(); ++i) {
    if (collectors_[i].id == id) {
      collectors_.erase(collectors_.begin() + static_cast<std::ptrdiff_t>(i));
      return;
    }
  }
}

void MetricsRegistry::CollectorHandle::release() {
  if (reg_ != nullptr) {
    reg_->remove_collector(id_);
    reg_ = nullptr;
  }
}

std::string MetricsRegistry::prometheus_text() const {
  std::string out;
  for (const Family& f : families_) {
    out += "# TYPE ";
    out += f.name;
    out += f.kind == Kind::kCounter
               ? " counter\n"
               : (f.kind == Kind::kGauge ? " gauge\n" : " histogram\n");
    for (const Series& s : f.series) {
      if (f.kind == Kind::kHistogram) {
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i <= Histogram::kBuckets; ++i) {
          cumulative += s.histogram.bucket_count(i);
          Labels bl = s.labels;
          bl.emplace_back(
              "le", i == Histogram::kBuckets
                        ? std::string("+Inf")
                        : std::to_string(Histogram::upper_bound(i)));
          out += f.name;
          out += "_bucket";
          append_labels(out, bl);
          out += ' ';
          out += std::to_string(cumulative);
          out += '\n';
        }
        out += f.name;
        out += "_sum";
        append_labels(out, s.labels);
        out += ' ';
        out += std::to_string(s.histogram.sum());
        out += '\n';
        out += f.name;
        out += "_count";
        append_labels(out, s.labels);
        out += ' ';
        out += std::to_string(s.histogram.count());
        out += '\n';
      } else {
        out += f.name;
        append_labels(out, s.labels);
        out += ' ';
        out += std::to_string(f.kind == Kind::kCounter
                                  ? static_cast<std::int64_t>(
                                        s.counter.value())
                                  : s.gauge.value());
        out += '\n';
      }
    }
  }
  Collection col;
  for (const CollectorEntry& c : collectors_) c.fn(col);
  std::string_view last_name;
  for (const Collection::Sample& s : col.samples_) {
    if (s.name != last_name) {
      out += "# TYPE ";
      out += s.name;
      out += s.is_counter ? " counter\n" : " gauge\n";
      last_name = s.name;
    }
    out += s.name;
    append_labels(out, s.labels);
    out += ' ';
    out += std::to_string(s.value);
    out += '\n';
  }
  return out;
}

std::string MetricsRegistry::json_snapshot() const {
  std::string out = "{\"metrics\":[";
  bool first = true;
  auto emit_head = [&](std::string_view name, std::string_view type,
                       const Labels& labels) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    out += name;
    out += "\",\"type\":\"";
    out += type;
    out += "\",\"labels\":";
    append_labels_json(out, labels);
  };
  for (const Family& f : families_) {
    for (const Series& s : f.series) {
      if (f.kind == Kind::kHistogram) {
        emit_head(f.name, "histogram", s.labels);
        out += ",\"count\":";
        out += std::to_string(s.histogram.count());
        out += ",\"sum\":";
        out += std::to_string(s.histogram.sum());
        out += ",\"buckets\":[";
        for (std::size_t i = 0; i <= Histogram::kBuckets; ++i) {
          if (i != 0) out += ',';
          out += std::to_string(s.histogram.bucket_count(i));
        }
        out += "]}";
      } else {
        emit_head(f.name, f.kind == Kind::kCounter ? "counter" : "gauge",
                  s.labels);
        out += ",\"value\":";
        out += std::to_string(
            f.kind == Kind::kCounter
                ? static_cast<std::int64_t>(s.counter.value())
                : s.gauge.value());
        out += '}';
      }
    }
  }
  Collection col;
  for (const CollectorEntry& c : collectors_) c.fn(col);
  for (const Collection::Sample& s : col.samples_) {
    emit_head(s.name, s.is_counter ? "counter" : "gauge", s.labels);
    out += ",\"value\":";
    out += std::to_string(s.value);
    out += '}';
  }
  out += "]}";
  return out;
}

}  // namespace vpim::obs
