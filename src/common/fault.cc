#include "common/fault.h"

#include <cstring>

#include "common/rng.h"

namespace vpim {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kTransientDpu: return "TRANSIENT_DPU";
    case FaultKind::kMramEcc: return "MRAM_ECC";
    case FaultKind::kRankDeath: return "RANK_DEATH";
    case FaultKind::kRankSeizure: return "RANK_SEIZURE";
    case FaultKind::kLostCompletion: return "LOST_COMPLETION";
  }
  return "UNKNOWN";
}

std::string FaultRecord::describe() const {
  return std::string("fault ") + fault_kind_name(kind) + " rank=" +
         std::to_string(rank) + " dpu=" + std::to_string(dpu) + " t=" +
         std::to_string(at_time) + "ns";
}

FaultPlan::FaultPlan(std::vector<FaultEvent> events)
    : events_(std::move(events)), fired_flags_(events_.size(), false) {}

std::vector<FaultEvent> FaultPlan::generate(const FaultPlanConfig& config,
                                            std::uint32_t nr_ranks) {
  VPIM_CHECK(nr_ranks > 0, "fault plan needs at least one rank");
  Rng rng(config.seed);
  std::vector<FaultEvent> events;
  auto pick_rank = [&] {
    return static_cast<std::uint32_t>(rng.uniform(0, nr_ranks - 1));
  };
  auto pick_op = [&] {
    return static_cast<std::uint64_t>(
        rng.uniform(1, static_cast<std::int64_t>(config.max_op)));
  };
  for (std::uint32_t i = 0; i < config.transient_dpu_faults; ++i) {
    events.push_back({FaultKind::kTransientDpu, pick_rank(),
                      static_cast<std::uint32_t>(rng.uniform(0, 63)),
                      pick_op(), 0, 0});
  }
  for (std::uint32_t i = 0; i < config.mram_ecc_faults; ++i) {
    events.push_back({FaultKind::kMramEcc, pick_rank(), 0, pick_op(), 0, 0});
  }
  for (std::uint32_t i = 0; i < config.rank_deaths; ++i) {
    events.push_back({FaultKind::kRankDeath, pick_rank(), 0, pick_op(), 0, 0});
  }
  for (std::uint32_t i = 0; i < config.rank_seizures; ++i) {
    const SimNs at = static_cast<SimNs>(
        rng.uniform(static_cast<std::int64_t>(config.seizure_from_ns),
                    static_cast<std::int64_t>(config.seizure_until_ns)));
    events.push_back(
        {FaultKind::kRankSeizure, pick_rank(), 0, 0, at,
         config.seizure_hold_ns});
  }
  for (std::uint32_t i = 0; i < config.lost_completions; ++i) {
    events.push_back(
        {FaultKind::kLostCompletion, pick_rank(), 0, pick_op(), 0, 0});
  }
  // Storm bursts: correlated clusters on one victim rank each. All draws
  // stay on the single seeded RNG, in a fixed order, so the schedule is a
  // pure function of (config, nr_ranks).
  for (std::uint32_t b = 0; b < config.storm_bursts; ++b) {
    const std::uint32_t victim = pick_rank();
    const std::uint64_t base = pick_op();
    for (std::uint32_t w = 0; w < config.storm_width; ++w) {
      events.push_back({FaultKind::kTransientDpu, victim,
                        static_cast<std::uint32_t>(rng.uniform(0, 63)),
                        base + w, 0, 0});
      events.push_back({FaultKind::kMramEcc, victim, 0, base + w, 0, 0});
    }
    events.push_back({FaultKind::kLostCompletion, victim, 0,
                      base + config.storm_width / 2, 0, 0});
    // The death trigger counts *device* ops (launches + transfers), which
    // advance roughly twice as fast as either channel alone; land it just
    // past the volley so the burst plays out before the rank goes dark.
    events.push_back({FaultKind::kRankDeath, victim, 0,
                      2 * (base + config.storm_width), 0, 0});
  }
  return events;
}

std::optional<FaultRecord> FaultPlan::fire_op_locked(std::uint32_t rank,
                                                     SimNs now,
                                                     bool launch_channel,
                                                     bool transfer_channel,
                                                     const Counters& c) {
  for (std::size_t i = 0; i < events_.size(); ++i) {
    if (fired_flags_[i]) continue;
    const FaultEvent& ev = events_[i];
    if (ev.rank != rank) continue;
    bool due = false;
    switch (ev.kind) {
      case FaultKind::kTransientDpu:
        due = launch_channel && ev.at_op == c.launches;
        break;
      case FaultKind::kMramEcc:
        due = transfer_channel && ev.at_op == c.transfers;
        break;
      case FaultKind::kRankDeath:
        // Death can strike on any device op (launch or transfer).
        due = (launch_channel || transfer_channel) &&
              ev.at_op == c.device_ops;
        break;
      default:
        break;
    }
    if (!due) continue;
    fired_flags_[i] = true;
    const FaultRecord rec{ev.kind, ev.rank, ev.dpu, now};
    fired_log_.push_back(rec);
    return rec;
  }
  return std::nullopt;
}

std::optional<FaultRecord> FaultPlan::on_launch(std::uint32_t rank,
                                                SimNs now) {
  std::lock_guard<std::mutex> lock(mu_);
  if (counters_.size() <= rank) counters_.resize(rank + 1);
  Counters& c = counters_[rank];
  ++c.launches;
  ++c.device_ops;
  return fire_op_locked(rank, now, /*launch=*/true, /*transfer=*/false, c);
}

std::optional<FaultRecord> FaultPlan::on_transfer(std::uint32_t rank,
                                                  SimNs now) {
  std::lock_guard<std::mutex> lock(mu_);
  if (counters_.size() <= rank) counters_.resize(rank + 1);
  Counters& c = counters_[rank];
  ++c.transfers;
  ++c.device_ops;
  return fire_op_locked(rank, now, /*launch=*/false, /*transfer=*/true, c);
}

std::optional<FaultRecord> FaultPlan::on_request(std::uint32_t rank,
                                                 SimNs now) {
  std::lock_guard<std::mutex> lock(mu_);
  if (counters_.size() <= rank) counters_.resize(rank + 1);
  Counters& c = counters_[rank];
  ++c.requests;
  for (std::size_t i = 0; i < events_.size(); ++i) {
    if (fired_flags_[i]) continue;
    const FaultEvent& ev = events_[i];
    if (ev.kind != FaultKind::kLostCompletion || ev.rank != rank) continue;
    if (ev.at_op != c.requests) continue;
    fired_flags_[i] = true;
    const FaultRecord rec{ev.kind, ev.rank, ev.dpu, now};
    fired_log_.push_back(rec);
    return rec;
  }
  return std::nullopt;
}

std::vector<FaultEvent> FaultPlan::take_due_seizures(SimNs now) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<FaultEvent> due;
  for (std::size_t i = 0; i < events_.size(); ++i) {
    if (fired_flags_[i]) continue;
    const FaultEvent& ev = events_[i];
    if (ev.kind != FaultKind::kRankSeizure || ev.at_time > now) continue;
    fired_flags_[i] = true;
    fired_log_.push_back({ev.kind, ev.rank, ev.dpu, now});
    due.push_back(ev);
  }
  return due;
}

std::vector<FaultRecord> FaultPlan::fired() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fired_log_;
}

std::uint64_t FaultPlan::fired_count(FaultKind kind) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t n = 0;
  for (const FaultRecord& rec : fired_log_) {
    if (rec.kind == kind) ++n;
  }
  return n;
}

// ---- fault-record wire format --------------------------------------------

std::vector<std::uint8_t> serialize_fault_record(const FaultRecord& record) {
  std::vector<std::uint8_t> out(kFaultRecordBytes);
  const std::uint32_t kind = static_cast<std::uint32_t>(record.kind);
  std::memcpy(out.data() + 0, &kFaultRecordMagic, 4);
  std::memcpy(out.data() + 4, &kind, 4);
  std::memcpy(out.data() + 8, &record.rank, 4);
  std::memcpy(out.data() + 12, &record.dpu, 4);
  std::memcpy(out.data() + 16, &record.at_time, 8);
  return out;
}

std::optional<FaultRecord> parse_fault_record(
    std::span<const std::uint8_t> bytes, std::uint32_t nr_ranks) {
  if (bytes.size() != kFaultRecordBytes) return std::nullopt;
  std::uint32_t magic = 0;
  std::uint32_t kind = 0;
  FaultRecord rec;
  std::memcpy(&magic, bytes.data() + 0, 4);
  std::memcpy(&kind, bytes.data() + 4, 4);
  std::memcpy(&rec.rank, bytes.data() + 8, 4);
  std::memcpy(&rec.dpu, bytes.data() + 12, 4);
  std::memcpy(&rec.at_time, bytes.data() + 16, 8);
  if (magic != kFaultRecordMagic) return std::nullopt;
  if (kind > static_cast<std::uint32_t>(FaultKind::kLostCompletion)) {
    return std::nullopt;
  }
  rec.kind = static_cast<FaultKind>(kind);
  if (rec.rank >= nr_ranks) return std::nullopt;
  if (rec.dpu >= 64) return std::nullopt;
  return rec;
}

}  // namespace vpim
