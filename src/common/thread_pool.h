// Deterministic chunked host thread pool.
//
// The simulator models *virtual-time* parallelism with SimClock's
// run_parallel and the cost-model divisors; this pool is orthogonal: it
// spreads the simulator's own leaf work (independent DPU kernel runs,
// per-bank memcpy fan-out, GPA->HVA translation) over the host's cores so
// wall-clock time shrinks while simulated time is untouched.
//
// Determinism contract — the hard requirement the tests pin down:
//  - parallel_for(n, fn) partitions [0, n) into one contiguous,
//    index-ordered chunk per worker (no work stealing, no dynamic
//    scheduling), so every index always runs exactly once and callers can
//    merge per-index results in index order to get bit-identical output
//    regardless of VPIM_THREADS;
//  - bodies must not touch the SimClock, tracers, or breakdown
//    accumulators — all virtual-time accounting stays on the calling
//    thread;
//  - exceptions propagate deterministically: the exception thrown by the
//    lowest failing index is rethrown on the caller (each chunk runs its
//    indices in order and stops at its first failure, and the caller picks
//    the lowest-index chunk's capture), matching what a serial loop would
//    have thrown first;
//  - nested parallel_for calls from inside a pool worker run inline on
//    that worker, so the pool cannot deadlock on itself.
//
// Sizing: VPIM_THREADS env var when set (>= 1), otherwise
// std::thread::hardware_concurrency(). A pool of size 1 runs everything
// inline on the caller.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace vpim {

class ThreadPool {
 public:
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Process-wide pool, sized by VPIM_THREADS / hardware_concurrency on
  // first use. All simulator fan-out goes through this instance.
  static ThreadPool& instance();

  // Worker count (>= 1); 1 means fully inline execution.
  unsigned size() const { return threads_; }

  // Re-sizes the pool (determinism tests sweep 1/4/hw). Must not be called
  // concurrently with parallel_for.
  void resize(unsigned threads);

  // Runs body(i) for every i in [0, n), split into index-ordered chunks
  // across the workers; the calling thread executes the first chunk.
  // Blocks until every index completed; rethrows the lowest failing
  // index's exception.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& body);

  // Chunk granularity floor: fan-out is skipped (inline loop) when n is
  // below this, so tiny transfers don't pay wakeup latency.
  static constexpr std::size_t kMinFanout = 2;

 private:
  void start_workers(unsigned threads);
  void stop_workers();
  void worker_main();

  unsigned threads_ = 1;
  std::vector<std::thread> workers_;

  // One outstanding parallel_for at a time (callers serialize by design:
  // the simulation's control flow is single-threaded between fan-outs).
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  bool shutdown_ = false;
  std::uint64_t job_seq_ = 0;  // bumped per parallel_for; wakes workers
  // Current job (valid while pending_ > 0).
  const std::function<void(std::size_t)>* job_body_ = nullptr;
  std::size_t job_n_ = 0;
  unsigned job_chunks_ = 0;
  unsigned next_chunk_ = 0;
  unsigned pending_ = 0;
  std::vector<std::exception_ptr> chunk_errors_;
};

}  // namespace vpim
