// Deterministic, seeded fault injection.
//
// A FaultPlan is a schedule of hardware faults expressed in *virtual* terms:
// either "the Nth operation of a given kind on rank R" or "at virtual time
// T". Both triggers are evaluated only at serial points of the simulation
// (rank CI entry, driver transfer entry, backend request dispatch, manager
// observation), so a given seed produces bit-identical fault sequences at
// any VPIM_THREADS setting. With no plan installed every query is a no-op
// and the simulation is byte-identical to a fault-free build.
//
// Fault taxonomy (ISSUE 3):
//   kTransientDpu   - a DPU glitches during Rank::ci_launch; the launch
//                     aborts but the rank survives. Retryable.
//   kMramEcc        - an ECC event during a rank DMA window; the transfer
//                     aborts, data is intact on retry. Retryable.
//   kRankDeath      - the rank's control interface dies permanently. MRAM
//                     contents stay readable through the rescue path
//                     (Rank::clone_state_from) but no new CI/DMA completes.
//   kRankSeizure    - a native host app grabs a free rank out from under
//                     the manager and scribbles on it, releasing it later.
//   kLostCompletion - the device wedges and never completes one request;
//                     exercises the frontend's poll deadline.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/units.h"

namespace vpim {

enum class FaultKind : std::uint32_t {
  kTransientDpu = 0,
  kMramEcc = 1,
  kRankDeath = 2,
  kRankSeizure = 3,
  kLostCompletion = 4,
};

const char* fault_kind_name(FaultKind kind);

// What the device layer reports upward when a fault fires: the typed record
// a real driver would read out of an error mailbox.
struct FaultRecord {
  FaultKind kind = FaultKind::kTransientDpu;
  std::uint32_t rank = 0;
  std::uint32_t dpu = 0;   // affected DPU for kTransientDpu, else 0
  SimNs at_time = 0;       // virtual time the fault fired

  std::string describe() const;
};

// Thrown by the device layer when an injected fault fires. The backend's
// recovery wrapper catches it; native SDK callers see it directly (kernel
// fault handling is a known UPMEM pain point — native apps just crash).
class FaultError : public VpimError {
 public:
  explicit FaultError(const FaultRecord& record)
      : VpimError(record.describe()), record_(record) {}

  const FaultRecord& record() const { return record_; }

  // Transient faults are worth retrying after a backoff; the rest are not.
  bool transient() const {
    return record_.kind == FaultKind::kTransientDpu ||
           record_.kind == FaultKind::kMramEcc;
  }

 private:
  FaultRecord record_;
};

// One scheduled fault. Launch/transfer/request-scoped kinds trigger when the
// rank's per-channel operation counter reaches `at_op` (1-based); seizures
// trigger when virtual time reaches `at_time` and hold the rank for
// `hold_ns`.
struct FaultEvent {
  FaultKind kind = FaultKind::kTransientDpu;
  std::uint32_t rank = 0;
  std::uint32_t dpu = 0;
  std::uint64_t at_op = 0;
  SimNs at_time = 0;
  SimNs hold_ns = 0;
};

// Knobs for FaultPlan::generate. Counts are events drawn with the seeded
// RNG; op triggers land uniformly in [1, max_op], seizures uniformly in
// [seizure_from_ns, seizure_until_ns].
struct FaultPlanConfig {
  std::uint64_t seed = 1;
  std::uint32_t transient_dpu_faults = 0;
  std::uint32_t mram_ecc_faults = 0;
  std::uint32_t rank_deaths = 0;
  std::uint32_t rank_seizures = 0;
  std::uint32_t lost_completions = 0;
  std::uint64_t max_op = 32;
  SimNs seizure_from_ns = 0;
  SimNs seizure_until_ns = 1 * kSec;
  SimNs seizure_hold_ns = 200 * kMs;

  // Storm mode (ISSUE 8): on top of the independent events above, each
  // burst picks one victim rank and schedules a *correlated* cluster
  // there — `storm_width` transient DPU faults and ECC events at adjacent
  // op triggers, a lost completion in the middle of them, and a rank death
  // right after — modelling the real-world failure pattern where one
  // failing rank throws a volley of errors before dying, while tenants
  // churn at max rate. 0 bursts = storms off.
  std::uint32_t storm_bursts = 0;
  std::uint32_t storm_width = 3;
};

// The schedule plus the per-rank operation counters that drive it. All
// queries are serialized with an internal mutex; callers must only query
// from serial sections (never inside ThreadPool::parallel_for bodies).
class FaultPlan {
 public:
  FaultPlan() = default;
  explicit FaultPlan(std::vector<FaultEvent> events);

  // Expands a config into a concrete event schedule, reproducibly.
  static std::vector<FaultEvent> generate(const FaultPlanConfig& config,
                                          std::uint32_t nr_ranks);

  // Serial entry of Rank::ci_launch. Counts one launch op (and one combined
  // device op) on `rank`; returns the fault to raise, if one is due.
  std::optional<FaultRecord> on_launch(std::uint32_t rank, SimNs now);

  // Serial entry of a rank DMA window (RankMapping transfer/broadcast).
  // Counts one transfer op (and one combined device op) on `rank`.
  std::optional<FaultRecord> on_transfer(std::uint32_t rank, SimNs now);

  // Serial entry of the backend's per-request dispatch. Counts one request
  // op on `rank`; a hit means the completion for this request is lost.
  std::optional<FaultRecord> on_request(std::uint32_t rank, SimNs now);

  // Seizure events whose at_time has arrived. Each is returned exactly once
  // (marked fired); the driver decides whether the grab succeeds.
  std::vector<FaultEvent> take_due_seizures(SimNs now);

  // Every fault that has fired so far, in firing order.
  std::vector<FaultRecord> fired() const;
  std::uint64_t fired_count(FaultKind kind) const;

 private:
  struct Counters {
    std::uint64_t launches = 0;
    std::uint64_t transfers = 0;
    std::uint64_t requests = 0;
    std::uint64_t device_ops = 0;  // launches + transfers combined
  };

  std::optional<FaultRecord> fire_op_locked(std::uint32_t rank, SimNs now,
                                            bool launch_channel,
                                            bool transfer_channel,
                                            const Counters& c);

  mutable std::mutex mu_;
  std::vector<FaultEvent> events_;
  std::vector<bool> fired_flags_;
  std::vector<FaultRecord> fired_log_;
  std::vector<Counters> counters_;  // indexed by rank, grown on demand
};

// ---- fault-record wire format --------------------------------------------
//
// The simulated device DMAs fault records into a driver-owned mailbox as raw
// bytes; the driver parses them back out when the manager drains the log.
// The parser treats the bytes as hostile (fuzzed in tests/driver_fuzz_test).

inline constexpr std::uint32_t kFaultRecordMagic = 0xFA171E57u;
inline constexpr std::size_t kFaultRecordBytes = 24;

std::vector<std::uint8_t> serialize_fault_record(const FaultRecord& record);

// Returns nullopt for anything malformed: wrong size, bad magic, unknown
// kind, rank >= nr_ranks, or an out-of-range DPU index.
std::optional<FaultRecord> parse_fault_record(
    std::span<const std::uint8_t> bytes, std::uint32_t nr_ranks);

}  // namespace vpim
