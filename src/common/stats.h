// Small statistics helpers for benches and EXPERIMENTS.md tables.
#pragma once

#include <algorithm>
#include <cmath>
#include <numeric>
#include <span>
#include <vector>

#include "common/error.h"

namespace vpim {

inline double mean(std::span<const double> xs) {
  VPIM_CHECK(!xs.empty(), "mean of empty sample");
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

inline double stddev(std::span<const double> xs) {
  VPIM_CHECK(xs.size() >= 2, "stddev needs >= 2 samples");
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

// Nearest-rank percentile, p in [0, 100].
inline double percentile(std::vector<double> xs, double p) {
  VPIM_CHECK(!xs.empty(), "percentile of empty sample");
  VPIM_CHECK(p >= 0.0 && p <= 100.0, "percentile out of range");
  std::sort(xs.begin(), xs.end());
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(xs.size())));
  return xs[rank == 0 ? 0 : rank - 1];
}

// Geometric mean, used for "average overhead" style summaries.
inline double geomean(std::span<const double> xs) {
  VPIM_CHECK(!xs.empty(), "geomean of empty sample");
  double acc = 0.0;
  for (double x : xs) {
    VPIM_CHECK(x > 0.0, "geomean requires positive values");
    acc += std::log(x);
  }
  return std::exp(acc / static_cast<double>(xs.size()));
}

}  // namespace vpim
