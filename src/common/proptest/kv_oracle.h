// Independent in-memory reference KV for the ISSUE-10 differential suite.
//
// PR-5 oracle rules apply: this file re-derives the KV result spec and the
// partition hash from DESIGN.md §5h with its own code and its own literal
// constants — it includes nothing from src/kv/ and shares no helpers with
// the production service, so a bug in the DPU kernel, the batching path or
// the hot-key cache cannot cancel out against the reference.
//
// Semantics checked against it (see TESTING.md "KV oracle"):
//   GET    -> {0, value} when present, {1, 0} when absent
//   PUT    -> {0, previous value} on overwrite, {0, 0} on fresh insert,
//             {2, 0} when the key's partition is full
//   DELETE -> {0, deleted value} when present, {1, 0} when absent
//   SCAN   -> {0, up to `limit` key-sorted pairs with keys in [lo, hi)}
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace vpim::prop {

class KvOracle {
 public:
  struct Reply {
    std::uint32_t status = 0;
    std::uint64_t value = 0;
    std::uint32_t nresults = 0;  // rows touched/returned, mirrors the spec
    std::vector<std::pair<std::uint64_t, std::uint64_t>> pairs;
  };

  KvOracle(std::uint32_t partitions, std::uint32_t partition_capacity,
           std::uint32_t scan_limit);

  Reply get(std::uint64_t key);
  Reply put(std::uint64_t key, std::uint64_t value);
  Reply del(std::uint64_t key);
  Reply scan(std::uint64_t lo, std::uint64_t hi);

  // The partition a key routes to, per the documented hash spec.
  std::uint32_t partition_of(std::uint64_t key) const;

  // Byte image of one partition as the device would store it:
  // [u64 count | count x {u64 key, u64 value}] in ascending key order.
  std::vector<std::uint8_t> partition_image(std::uint32_t partition) const;

  std::uint64_t size() const;

 private:
  struct Row {
    std::uint64_t key = 0;
    std::uint64_t value = 0;
  };
  std::vector<Row>& rows_for(std::uint64_t key);

  std::uint32_t partitions_;
  std::uint32_t capacity_;
  std::uint32_t scan_limit_;
  std::vector<std::vector<Row>> store_;  // per partition, key-sorted
};

}  // namespace vpim::prop
