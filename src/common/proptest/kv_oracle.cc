#include "common/proptest/kv_oracle.h"

#include <algorithm>
#include <cstring>

#include "common/error.h"

namespace vpim::prop {

KvOracle::KvOracle(std::uint32_t partitions,
                   std::uint32_t partition_capacity,
                   std::uint32_t scan_limit)
    : partitions_(partitions), capacity_(partition_capacity),
      scan_limit_(scan_limit), store_(partitions) {
  VPIM_CHECK(partitions >= 1, "oracle needs at least one partition");
}

std::uint32_t KvOracle::partition_of(std::uint64_t key) const {
  // DESIGN.md §5h partition hash spec (64-bit murmur finalizer), written
  // out digit-for-digit from the doc rather than shared with src/kv/.
  std::uint64_t mixed = key;
  mixed ^= mixed >> 33;
  mixed *= UINT64_C(18397679294719823053);  // 0xff51afd7ed558ccd
  mixed ^= mixed >> 33;
  mixed *= UINT64_C(14181476777654086739);  // 0xc4ceb9fe1a85ec53
  mixed ^= mixed >> 33;
  return static_cast<std::uint32_t>(mixed % partitions_);
}

std::vector<KvOracle::Row>& KvOracle::rows_for(std::uint64_t key) {
  return store_[partition_of(key)];
}

KvOracle::Reply KvOracle::get(std::uint64_t key) {
  Reply r;
  const auto& rows = rows_for(key);
  auto it = std::lower_bound(
      rows.begin(), rows.end(), key,
      [](const Row& row, std::uint64_t k) { return row.key < k; });
  if (it != rows.end() && it->key == key) {
    r.status = 0;
    r.value = it->value;
    r.nresults = 1;
  } else {
    r.status = 1;
  }
  return r;
}

KvOracle::Reply KvOracle::put(std::uint64_t key, std::uint64_t value) {
  Reply r;
  auto& rows = rows_for(key);
  auto it = std::lower_bound(
      rows.begin(), rows.end(), key,
      [](const Row& row, std::uint64_t k) { return row.key < k; });
  if (it != rows.end() && it->key == key) {
    r.status = 0;
    r.value = it->value;  // previous value
    r.nresults = 1;
    it->value = value;
  } else if (rows.size() >= capacity_) {
    r.status = 2;
  } else {
    rows.insert(it, {key, value});
    r.status = 0;
  }
  return r;
}

KvOracle::Reply KvOracle::del(std::uint64_t key) {
  Reply r;
  auto& rows = rows_for(key);
  auto it = std::lower_bound(
      rows.begin(), rows.end(), key,
      [](const Row& row, std::uint64_t k) { return row.key < k; });
  if (it != rows.end() && it->key == key) {
    r.status = 0;
    r.value = it->value;
    r.nresults = 1;
    rows.erase(it);
  } else {
    r.status = 1;
  }
  return r;
}

KvOracle::Reply KvOracle::scan(std::uint64_t lo, std::uint64_t hi) {
  Reply r;
  r.status = 0;
  // Collect every row with lo <= key < hi across all partitions, then
  // keep the smallest scan_limit keys. The service merges per-partition
  // fragments; the oracle just walks the whole store.
  for (const auto& rows : store_) {
    for (const Row& row : rows) {
      if (row.key >= lo && row.key < hi) {
        r.pairs.emplace_back(row.key, row.value);
      }
    }
  }
  std::sort(r.pairs.begin(), r.pairs.end());
  if (r.pairs.size() > scan_limit_) r.pairs.resize(scan_limit_);
  r.nresults = static_cast<std::uint32_t>(r.pairs.size());
  return r;
}

std::vector<std::uint8_t> KvOracle::partition_image(
    std::uint32_t partition) const {
  VPIM_CHECK(partition < partitions_, "partition out of range");
  const auto& rows = store_[partition];
  std::vector<std::uint8_t> image(8 + rows.size() * 16);
  const std::uint64_t count = rows.size();
  std::memcpy(image.data(), &count, 8);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::memcpy(image.data() + 8 + i * 16, &rows[i].key, 8);
    std::memcpy(image.data() + 8 + i * 16 + 8, &rows[i].value, 8);
  }
  return image;
}

std::uint64_t KvOracle::size() const {
  std::uint64_t n = 0;
  for (const auto& rows : store_) n += rows.size();
  return n;
}

}  // namespace vpim::prop
