#include "common/proptest/oracle.h"

#include "common/error.h"

namespace vpim::prop {
namespace {

// Spec constants, restated here as literals on purpose: the oracle parses
// the wire format from the specification (DESIGN.md / Fig 7), not from the
// production struct definitions.
constexpr std::uint64_t kOraclePage = 4096;
constexpr std::uint64_t kOracleMaxEntries = 64;   // DPU slots per rank
constexpr std::uint64_t kOracleMaxXfer = 1ULL << 32;  // 4 GiB
constexpr std::uint64_t kWireRequestBytes = 112;  // 8 u32 + 2 u64 + 64-char
constexpr std::uint64_t kMatrixMetaBytes = 16;    // 2 u64
constexpr std::uint64_t kEntryMetaBytes = 40;     // 5 u64

std::uint32_t load_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t load_u64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(load_u32(p)) |
         (static_cast<std::uint64_t>(load_u32(p + 4)) << 32);
}

}  // namespace

void oracle_interleave(std::span<const std::uint8_t> src,
                       std::span<std::uint8_t> dst) {
  VPIM_CHECK(src.size() == dst.size(), "oracle buffers differ in size");
  VPIM_CHECK(src.size() % 8 == 0, "oracle size not a multiple of 8");
  const std::uint64_t words = src.size() / 8;
  // One flat pass over every byte: byte i of the linear image belongs to
  // word i/8 and chip i%8, and lands in that chip's contiguous stripe.
  for (std::uint64_t i = 0; i < src.size(); ++i) {
    const std::uint64_t word = i / 8;
    const std::uint64_t chip = i % 8;
    dst[chip * words + word] = src[i];
  }
}

void oracle_deinterleave(std::span<const std::uint8_t> src,
                         std::span<std::uint8_t> dst) {
  VPIM_CHECK(src.size() == dst.size(), "oracle buffers differ in size");
  VPIM_CHECK(src.size() % 8 == 0, "oracle size not a multiple of 8");
  const std::uint64_t words = src.size() / 8;
  for (std::uint64_t i = 0; i < dst.size(); ++i) {
    const std::uint64_t word = i / 8;
    const std::uint64_t chip = i % 8;
    dst[i] = src[chip * words + word];
  }
}

std::optional<OracleMatrix> oracle_deserialize(
    const std::vector<OracleDesc>& descs, const OracleMemReader& mem) {
  // Chain shape: [request][matrix meta]([entry meta][page list])*[response]
  // => odd count, at least 3.
  if (descs.size() < 3 || descs.size() % 2 == 0) return std::nullopt;
  if (descs[0].len < kWireRequestBytes) return std::nullopt;
  const std::uint8_t* req = mem(descs[0].gpa, kWireRequestBytes);
  if (req == nullptr) return std::nullopt;
  if (descs[1].len < kMatrixMetaBytes) return std::nullopt;
  const std::uint8_t* meta = mem(descs[1].gpa, kMatrixMetaBytes);
  if (meta == nullptr) return std::nullopt;

  OracleMatrix out;
  out.direction = load_u32(req + 4);  // WireRequest.direction
  if (out.direction > 1) return std::nullopt;  // kToRank=0, kFromRank=1

  const std::uint64_t nr_entries = load_u64(meta);
  const std::uint64_t total_bytes = load_u64(meta + 8);
  if (nr_entries != (descs.size() - 3) / 2) return std::nullopt;
  if (nr_entries > kOracleMaxEntries) return std::nullopt;
  if (total_bytes > kOracleMaxXfer) return std::nullopt;

  std::uint64_t summed_bytes = 0;
  for (std::uint64_t k = 0; k < nr_entries; ++k) {
    const OracleDesc& meta_desc = descs[2 + 2 * k];
    if (meta_desc.len < kEntryMetaBytes) return std::nullopt;
    const std::uint8_t* em = mem(meta_desc.gpa, kEntryMetaBytes);
    if (em == nullptr) return std::nullopt;
    OracleEntry entry;
    entry.dpu = load_u64(em);
    entry.mram_offset = load_u64(em + 8);
    const std::uint64_t size = load_u64(em + 16);
    const std::uint64_t first_off = load_u64(em + 24);
    const std::uint64_t nr_pages = load_u64(em + 32);
    if (size == 0 || size > kOracleMaxXfer) return std::nullopt;
    if (first_off >= kOraclePage) return std::nullopt;
    // Transition counting: index of the first and last page the byte range
    // [first_off, first_off + size) touches.
    const std::uint64_t first_page = first_off / kOraclePage;  // always 0
    const std::uint64_t last_page = (first_off + size - 1) / kOraclePage;
    if (nr_pages != last_page - first_page + 1) return std::nullopt;
    const OracleDesc& pages_desc = descs[3 + 2 * k];
    if (pages_desc.len != nr_pages * 8) return std::nullopt;
    const std::uint8_t* list = mem(pages_desc.gpa, pages_desc.len);
    if (list == nullptr) return std::nullopt;

    // Byte-at-a-time page gather (vs the production scatter-segment
    // builder): walk every listed page, validate it, and copy the bytes
    // the entry covers in it.
    entry.bytes.reserve(size);
    for (std::uint64_t p = 0; p < nr_pages; ++p) {
      const std::uint64_t page_gpa = load_u64(list + p * 8);
      if (page_gpa % kOraclePage != 0) return std::nullopt;
      const std::uint8_t* page = mem(page_gpa, kOraclePage);
      if (page == nullptr) return std::nullopt;
      const std::uint64_t start = (p == 0) ? first_off : 0;
      for (std::uint64_t b = start;
           b < kOraclePage && entry.bytes.size() < size; ++b) {
        entry.bytes.push_back(page[b]);
      }
    }
    if (entry.bytes.size() != size) return std::nullopt;

    out.nr_pages += nr_pages;
    summed_bytes += size;
    out.entries.push_back(std::move(entry));
  }
  if (summed_bytes != total_bytes) return std::nullopt;
  out.total_bytes = summed_bytes;
  return out;
}

OracleXferCost oracle_direct_xfer_cost(
    const CostModel& cost, const std::vector<OracleXferShape>& entries,
    bool c_data_path) {
  OracleXferCost r;
  // Everything below is accumulated entry by entry (additively), the
  // opposite shape from the production code's whole-matrix charges, so
  // additivity bugs in either direction show up as a mismatch.
  std::uint64_t pages = 0;
  std::uint64_t bytes = 0;
  for (const OracleXferShape& e : entries) {
    const std::uint64_t first_page = e.first_page_offset / kOraclePage;
    const std::uint64_t last_page =
        (e.first_page_offset + e.size - 1) / kOraclePage;
    pages += last_page - first_page + 1;
    bytes += e.size;
  }
  const auto n = static_cast<std::uint64_t>(entries.size());

  r.ioctl = cost.ioctl_ns;
  r.page_mgmt = cost.page_mgmt_ns_per_page * static_cast<SimNs>(pages);
  r.serialize = cost.frontend_request_fixed_ns +
                cost.serialize_ns_per_page * static_cast<SimNs>(pages) +
                cost.per_dpu_metadata_ns * static_cast<SimNs>(n);
  r.interrupt = cost.vmexit_notify_ns + cost.irq_inject_ns;
  const std::uint64_t translate_threads =
      cost.translate_threads > 0 ? cost.translate_threads : 1;
  r.deserialize =
      cost.deserialize_ns_per_page * static_cast<SimNs>(pages) +
      cost.per_dpu_metadata_ns * static_cast<SimNs>(n) +
      static_cast<SimNs>(
          static_cast<std::uint64_t>(cost.gpa_translate_ns_per_page) *
          pages / translate_threads);
  const std::uint64_t batches =
      (n + cost.backend_op_threads - 1) / cost.backend_op_threads;
  const double gbps =
      c_data_path ? cost.scattered_copy_gbps : cost.interleave_naive_gbps;
  r.transfer = static_cast<SimNs>(batches) * cost.backend_per_entry_ns +
               cost.native_xfer_fixed_ns +
               static_cast<SimNs>(static_cast<double>(bytes) / gbps);
  r.total = r.ioctl + r.page_mgmt + r.serialize + r.interrupt +
            r.deserialize + r.transfer;
  return r;
}

}  // namespace vpim::prop
