// Independent reference oracle for differential testing.
//
// Everything here is a deliberately naive, single-threaded
// reimplementation of behaviour the production stack implements elsewhere
// (upmem/interleave.cc, vpim/wire.cc, the cost charges spread across
// frontend/backend/driver). It shares NO code with those paths — different
// loop structures, byte-at-a-time data movement, field parsing at explicit
// byte offsets, page counts via first/last-page transition counting — so a
// bug has to be made twice, in two different shapes, to escape the
// differential properties in tests/prop/.
//
// Keep it slow and obvious. Do not "optimize" the oracle or refactor it to
// reuse production helpers; its entire value is independence.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/cost_model.h"

namespace vpim::prop {

// ---- MRAM byte interleave (8 chips x 8-byte words) -----------------------
//
// Reference for upmem::interleave_*: walk every flat byte index once and
// place it, instead of the production word/chip loop nest. n must be a
// multiple of 8; src and dst must both hold n bytes.
void oracle_interleave(std::span<const std::uint8_t> src,
                       std::span<std::uint8_t> dst);
void oracle_deinterleave(std::span<const std::uint8_t> src,
                         std::span<std::uint8_t> dst);

// ---- wire-format deserializer --------------------------------------------
//
// Reference for core::deserialize_matrix, working from raw descriptor
// (gpa, len) pairs and a memory accessor instead of virtio/GuestMemory
// types. Returns nullopt for every chain the device must reject; on accept
// the gathered bytes are materialized (byte-at-a-time page walk), which
// the differential test compares against the production scatter segments.

struct OracleDesc {
  std::uint64_t gpa = 0;
  std::uint64_t len = 0;
};

struct OracleEntry {
  std::uint64_t dpu = 0;
  std::uint64_t mram_offset = 0;
  std::vector<std::uint8_t> bytes;  // gathered payload, size == entry size
};

struct OracleMatrix {
  std::uint32_t direction = 0;
  std::uint64_t nr_pages = 0;
  std::uint64_t total_bytes = 0;
  std::vector<OracleEntry> entries;
};

// mem(gpa, len) returns a pointer to `len` readable bytes at `gpa`, or
// nullptr if [gpa, gpa+len) is not fully inside guest RAM.
using OracleMemReader =
    std::function<const std::uint8_t*(std::uint64_t, std::uint64_t)>;

std::optional<OracleMatrix> oracle_deserialize(
    const std::vector<OracleDesc>& descs, const OracleMemReader& mem);

// ---- direct rank-op cost recomputation -----------------------------------
//
// Reference for the virtual time one unbatched, uncached write_to_rank /
// read_from_rank charges end to end (frontend ioctl + page mgmt +
// serialize, VMEXIT/IRQ transitions, backend deserialize + translate +
// per-entry handling, native transfer at the configured data-path
// bandwidth). Recomputed additively per entry with transition-counted page
// counts; the property compares it against the production DeviceStats op
// and W-rank step breakdowns.

struct OracleXferShape {
  std::uint64_t first_page_offset = 0;  // gpa % 4096 of the buffer start
  std::uint64_t size = 0;               // bytes
};

struct OracleXferCost {
  SimNs ioctl = 0;
  SimNs page_mgmt = 0;   // W-rank "Page" step
  SimNs serialize = 0;   // W-rank "Ser" step
  SimNs interrupt = 0;   // W-rank "Int" step (notify + completion)
  SimNs deserialize = 0; // W-rank "Deser" step (incl. GPA translation)
  SimNs transfer = 0;    // W-rank "T-data" step
  SimNs total = 0;
};

OracleXferCost oracle_direct_xfer_cost(
    const CostModel& cost, const std::vector<OracleXferShape>& entries,
    bool c_data_path);

}  // namespace vpim::prop
