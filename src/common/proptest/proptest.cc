#include "common/proptest/proptest.h"

#include <algorithm>
#include <cstdlib>
#include <limits>

namespace vpim::prop {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

Params Params::from_env(std::uint64_t base_seed, int iterations) {
  Params p;
  p.base_seed = base_seed;
  p.iterations = iterations;
  if (const char* seed = std::getenv("VPIM_PROP_SEED");
      seed != nullptr && *seed != '\0') {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(seed, &end, 10);
    if (end != nullptr && *end == '\0') {
      p.replay_seed = static_cast<std::uint64_t>(v);
    }
  }
  if (const char* iters = std::getenv("VPIM_PROP_ITERS");
      iters != nullptr && *iters != '\0') {
    char* end = nullptr;
    const long mult = std::strtol(iters, &end, 10);
    if (end != nullptr && *end == '\0' && mult > 0) {
      p.iterations = static_cast<int>(
          std::min<long long>(static_cast<long long>(iterations) * mult,
                              1000000));
    }
  }
  return p;
}

Gen<std::uint64_t> u64_range(std::uint64_t lo, std::uint64_t hi) {
  Gen<std::uint64_t> gen;
  gen.sample = [lo, hi](Rng& rng) -> std::uint64_t {
    // uniform() works on int64; split the span so full-width ranges work.
    const std::uint64_t span = hi - lo;
    if (span <= static_cast<std::uint64_t>(
                    std::numeric_limits<std::int64_t>::max())) {
      return lo + static_cast<std::uint64_t>(
                      rng.uniform(0, static_cast<std::int64_t>(span)));
    }
    std::uint64_t v;
    do {
      v = rng.next_u64();
    } while (v < lo || v > hi);
    return v;
  };
  gen.shrink = [lo](const std::uint64_t& v) {
    std::vector<std::uint64_t> out;
    if (v == lo) return out;
    out.push_back(lo);
    const std::uint64_t mid = lo + (v - lo) / 2;
    if (mid != lo && mid != v) out.push_back(mid);
    out.push_back(v - 1);
    return out;
  };
  return gen;
}

namespace detail {

std::string one_line(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return out;
}

}  // namespace detail

}  // namespace vpim::prop
