// Deterministic, seeded property-based testing: generators, combinators,
// and greedy shrinking, with no dependency beyond the standard library.
//
// A property is a callable that throws (PropViolation via require(), or any
// std::exception out of the code under test) when it does not hold for a
// generated value. run_property() draws `iterations` values from a Gen<T>,
// each from an independently seeded Rng, and on the first failure greedily
// shrinks the counterexample through Gen::shrink before reporting.
//
// Reproducibility contract:
//   - Every case is generated from its own derived seed (splitmix64 over
//     the base seed and the case index), so a failing case is identified by
//     one 64-bit number regardless of how many iterations ran before it.
//   - On failure the harness prints a one-line reproducer to stderr:
//       [prop] FAIL <name>: VPIM_PROP_SEED=<n> ...
//     Re-running the same test with that environment variable replays
//     exactly that case (and only it). Generation uses only the case Rng —
//     never wall-clock, thread count, or global state — so the replay is
//     bit-identical at any VPIM_THREADS.
//   - VPIM_PROP_ITERS=<k> multiplies the iteration budget (the nightly CI
//     job runs at 50x).
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <exception>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"

namespace vpim::prop {

// SplitMix64 step: a cheap, well-mixed stream for deriving per-case seeds
// from (base_seed, index) without correlating neighbouring cases.
std::uint64_t splitmix64(std::uint64_t x);

// Run parameters. from_env() applies the two environment knobs documented
// above on top of a test's compiled-in defaults.
struct Params {
  std::uint64_t base_seed = 1;
  int iterations = 100;
  // Upper bound on shrink attempts (candidate evaluations), so a
  // pathological shrink tree cannot hang a test.
  int max_shrink_steps = 2000;
  // When set, skip generation-by-index and run exactly one case from this
  // seed (the replay path behind VPIM_PROP_SEED).
  std::optional<std::uint64_t> replay_seed;
  // Suppress the stderr FAIL reproducer line. Set by teeth tests whose
  // failure is the expected outcome, so log harvesters (tools/prop_seeds.py)
  // only surface genuine failures; the Outcome still carries the reproducer.
  bool quiet = false;

  static Params from_env(std::uint64_t base_seed, int iterations);
};

// Thrown by require(); any std::exception escaping a property counts as a
// failure, so code under test may also throw VpimError etc. directly.
class PropViolation : public std::exception {
 public:
  explicit PropViolation(std::string msg) : msg_(std::move(msg)) {}
  const char* what() const noexcept override { return msg_.c_str(); }

 private:
  std::string msg_;
};

inline void require(bool ok, const std::string& msg) {
  if (!ok) throw PropViolation(msg);
}

// A generator: samples a value from an Rng and (optionally) proposes
// smaller candidate values for shrinking. Candidates must be "no larger"
// by whatever ordering the test cares about; the harness only requires
// that repeated shrinking terminates (guaranteed by max_shrink_steps).
template <typename T>
struct Gen {
  std::function<T(Rng&)> sample;
  std::function<std::vector<T>(const T&)> shrink =
      [](const T&) { return std::vector<T>{}; };
};

// ---- combinators ---------------------------------------------------------

// Uniform integer in [lo, hi], shrinking toward lo (halve the distance,
// then single steps).
Gen<std::uint64_t> u64_range(std::uint64_t lo, std::uint64_t hi);

// One of the listed values, shrinking toward the first element.
template <typename T>
Gen<T> element_of(std::vector<T> values) {
  auto shared = std::make_shared<std::vector<T>>(std::move(values));
  Gen<T> gen;
  gen.sample = [shared](Rng& rng) -> T {
    return (*shared)[static_cast<std::size_t>(
        rng.uniform(0, static_cast<std::int64_t>(shared->size()) - 1))];
  };
  gen.shrink = [shared](const T& v) {
    std::vector<T> out;
    for (const T& candidate : *shared) {
      if (candidate == v) break;
      out.push_back(candidate);
    }
    return out;
  };
  return gen;
}

// A vector of `elem` values with size in [min_size, max_size]. Shrinks by
// dropping the back half, dropping single elements, and shrinking
// individual elements in place.
template <typename T>
Gen<std::vector<T>> vector_of(Gen<T> elem, std::size_t min_size,
                              std::size_t max_size) {
  auto shared = std::make_shared<Gen<T>>(std::move(elem));
  Gen<std::vector<T>> gen;
  gen.sample = [shared, min_size, max_size](Rng& rng) {
    const auto n = static_cast<std::size_t>(
        rng.uniform(static_cast<std::int64_t>(min_size),
                    static_cast<std::int64_t>(max_size)));
    std::vector<T> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) out.push_back(shared->sample(rng));
    return out;
  };
  gen.shrink = [shared, min_size](const std::vector<T>& v) {
    std::vector<std::vector<T>> out;
    if (v.size() > min_size) {
      // Keep only the front half (still >= min_size).
      const std::size_t half = std::max(min_size, v.size() / 2);
      if (half < v.size()) {
        out.emplace_back(v.begin(),
                         v.begin() + static_cast<std::ptrdiff_t>(half));
      }
      // Drop each single element.
      for (std::size_t i = 0; i < v.size(); ++i) {
        std::vector<T> smaller;
        smaller.reserve(v.size() - 1);
        for (std::size_t j = 0; j < v.size(); ++j) {
          if (j != i) smaller.push_back(v[j]);
        }
        out.push_back(std::move(smaller));
      }
    }
    // Shrink elements in place (first shrink candidate of each slot).
    for (std::size_t i = 0; i < v.size(); ++i) {
      for (const T& candidate : shared->shrink(v[i])) {
        std::vector<T> replaced = v;
        replaced[i] = candidate;
        out.push_back(std::move(replaced));
      }
    }
    return out;
  };
  return gen;
}

// ---- runner --------------------------------------------------------------

template <typename T>
struct Outcome {
  bool ok = true;
  std::uint64_t failing_seed = 0;  // case seed (the VPIM_PROP_SEED value)
  int failing_iteration = -1;
  int shrink_steps = 0;
  std::string message;        // what() of the (shrunk) failure
  T minimal{};                // shrunk counterexample
  std::string minimal_repr;   // show(minimal), if a show fn was given
  std::string reproducer;     // the one-line VPIM_PROP_SEED=... string
};

namespace detail {

// Newlines would break the one-line reproducer contract.
std::string one_line(const std::string& s);

template <typename T>
std::optional<std::string> run_one(
    const std::function<void(const T&)>& property, const T& value) {
  try {
    property(value);
    return std::nullopt;
  } catch (const std::exception& e) {
    return std::string(e.what());
  } catch (...) {
    return std::string("non-standard exception");
  }
}

}  // namespace detail

// Checks `property` against `iterations` values drawn from `gen`. `show`
// renders the counterexample for the reproducer line (optional but
// strongly recommended). The returned Outcome is also suitable for
// asserting that a deliberately broken property *does* fail (teeth tests).
template <typename T>
Outcome<T> run_property(
    const std::string& name, const Params& params, const Gen<T>& gen,
    const std::function<void(const T&)>& property,
    const std::function<std::string(const T&)>& show = {}) {
  Outcome<T> out;
  const int iters = params.replay_seed ? 1 : params.iterations;
  // Seed log line: the nightly job harvests these so any run can be
  // replayed later even if it passed.
  std::fprintf(stderr, "[prop] %s: base_seed=%llu iterations=%d%s\n",
               name.c_str(),
               static_cast<unsigned long long>(params.base_seed), iters,
               params.replay_seed ? " (replay)" : "");
  for (int i = 0; i < iters; ++i) {
    const std::uint64_t case_seed =
        params.replay_seed
            ? *params.replay_seed
            : splitmix64(params.base_seed +
                         0x9E3779B97F4A7C15ULL *
                             (static_cast<std::uint64_t>(i) + 1));
    Rng rng(case_seed);
    T value = gen.sample(rng);
    auto failure = detail::run_one(property, value);
    if (!failure) continue;

    // Greedy shrink: take the first shrink candidate that still fails,
    // restart from it, stop when no candidate fails (local minimum).
    int steps = 0;
    bool progressed = true;
    while (progressed && steps < params.max_shrink_steps) {
      progressed = false;
      for (const T& candidate : gen.shrink(value)) {
        if (steps >= params.max_shrink_steps) break;
        ++steps;
        if (auto f = detail::run_one(property, candidate)) {
          value = candidate;
          failure = std::move(f);
          progressed = true;
          break;
        }
      }
    }

    out.ok = false;
    out.failing_seed = case_seed;
    out.failing_iteration = i;
    out.shrink_steps = steps;
    out.message = *failure;
    out.minimal = value;
    out.minimal_repr = show ? show(value) : std::string();
    out.reproducer =
        "VPIM_PROP_SEED=" + std::to_string(case_seed) + " replays " + name +
        " | " + detail::one_line(out.message) +
        (out.minimal_repr.empty()
             ? std::string()
             : " | minimal: " + detail::one_line(out.minimal_repr));
    if (!params.quiet) {
      std::fprintf(stderr, "[prop] FAIL %s: %s\n", name.c_str(),
                   out.reproducer.c_str());
    }
    return out;
  }
  return out;
}

}  // namespace vpim::prop
