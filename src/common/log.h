// Minimal leveled logger. Off by default so tests and benches stay quiet;
// examples turn it on to narrate what the stack is doing.
#pragma once

#include <cstdio>
#include <string_view>
#include <utility>

namespace vpim {

enum class LogLevel : int { kError = 0, kWarn, kInfo, kDebug };

LogLevel log_level();
void set_log_level(LogLevel level);

namespace detail {
void log_line(LogLevel level, std::string_view tag, const char* fmt, ...)
#if defined(__GNUC__)
    __attribute__((format(printf, 3, 4)))
#endif
    ;
}  // namespace detail

}  // namespace vpim

#define VPIM_LOG(level, tag, ...)                            \
  do {                                                       \
    if (static_cast<int>(level) <=                           \
        static_cast<int>(::vpim::log_level())) {             \
      ::vpim::detail::log_line(level, tag, __VA_ARGS__);     \
    }                                                        \
  } while (0)

#define VPIM_INFO(tag, ...) VPIM_LOG(::vpim::LogLevel::kInfo, tag, __VA_ARGS__)
#define VPIM_WARN(tag, ...) VPIM_LOG(::vpim::LogLevel::kWarn, tag, __VA_ARGS__)
#define VPIM_DEBUG(tag, ...) \
  VPIM_LOG(::vpim::LogLevel::kDebug, tag, __VA_ARGS__)
