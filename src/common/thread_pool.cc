#include "common/thread_pool.h"

#include <algorithm>
#include <cstdlib>

#include "common/error.h"

namespace vpim {

namespace {

// True while the current thread is executing a parallel_for chunk; nested
// fan-outs run inline so the pool never blocks on itself.
thread_local bool t_in_parallel_region = false;

unsigned configured_threads() {
  if (const char* s = std::getenv("VPIM_THREADS")) {
    const long v = std::strtol(s, nullptr, 10);
    if (v >= 1) return static_cast<unsigned>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? hw : 1;
}

}  // namespace

ThreadPool::ThreadPool(unsigned threads) { start_workers(threads); }

ThreadPool::~ThreadPool() { stop_workers(); }

ThreadPool& ThreadPool::instance() {
  static ThreadPool pool(configured_threads());
  return pool;
}

void ThreadPool::start_workers(unsigned threads) {
  threads_ = std::max(1u, threads);
  workers_.reserve(threads_ - 1);
  for (unsigned i = 0; i + 1 < threads_; ++i) {
    workers_.emplace_back([this] { worker_main(); });
  }
}

void ThreadPool::stop_workers() {
  {
    std::lock_guard lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
  workers_.clear();
  shutdown_ = false;
}

void ThreadPool::resize(unsigned threads) {
  {
    std::lock_guard lock(mu_);
    VPIM_CHECK(pending_ == 0, "resize during an active parallel_for");
  }
  stop_workers();
  start_workers(threads);
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (threads_ == 1 || n < kMinFanout || t_in_parallel_region) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  const auto chunks =
      static_cast<unsigned>(std::min<std::size_t>(threads_, n));
  {
    std::lock_guard lock(mu_);
    VPIM_CHECK(pending_ == 0, "overlapping parallel_for calls");
    job_body_ = &body;
    job_n_ = n;
    job_chunks_ = chunks;
    next_chunk_ = 0;
    pending_ = chunks;
    chunk_errors_.assign(chunks, nullptr);
    ++job_seq_;
  }
  work_cv_.notify_all();

  // The caller is a full participant: it claims index-ordered chunks from
  // the same cursor the workers use. Which thread runs a chunk is
  // irrelevant — the chunk's index range is fixed by (k, chunks, n).
  for (;;) {
    unsigned k;
    {
      std::lock_guard lock(mu_);
      if (next_chunk_ >= job_chunks_) break;
      k = next_chunk_++;
    }
    const std::size_t begin = n * k / chunks;
    const std::size_t end = n * (k + 1) / chunks;
    t_in_parallel_region = true;
    try {
      for (std::size_t i = begin; i < end; ++i) body(i);
    } catch (...) {
      chunk_errors_[k] = std::current_exception();
    }
    t_in_parallel_region = false;
    {
      std::lock_guard lock(mu_);
      --pending_;
    }
  }

  std::unique_lock lock(mu_);
  done_cv_.wait(lock, [this] { return pending_ == 0; });
  job_body_ = nullptr;
  // Rethrow what a serial loop would have thrown first: chunks run their
  // indices in order and stop at the first failure, so the lowest failed
  // chunk holds the lowest failing index.
  for (std::exception_ptr& e : chunk_errors_) {
    if (e) {
      std::exception_ptr err = e;
      chunk_errors_.clear();
      lock.unlock();
      std::rethrow_exception(err);
    }
  }
  chunk_errors_.clear();
}

void ThreadPool::worker_main() {
  std::uint64_t seen_seq = 0;
  for (;;) {
    unsigned k;
    const std::function<void(std::size_t)>* body;
    std::size_t n;
    unsigned chunks;
    {
      std::unique_lock lock(mu_);
      work_cv_.wait(lock, [&] {
        return shutdown_ ||
               (job_seq_ != seen_seq && next_chunk_ < job_chunks_);
      });
      if (shutdown_) return;
      k = next_chunk_++;
      if (next_chunk_ >= job_chunks_) seen_seq = job_seq_;
      body = job_body_;
      n = job_n_;
      chunks = job_chunks_;
    }
    const std::size_t begin = n * k / chunks;
    const std::size_t end = n * (k + 1) / chunks;
    t_in_parallel_region = true;
    try {
      for (std::size_t i = begin; i < end; ++i) (*body)(i);
    } catch (...) {
      chunk_errors_[k] = std::current_exception();
    }
    t_in_parallel_region = false;
    {
      std::lock_guard lock(mu_);
      if (--pending_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace vpim
