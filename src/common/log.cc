#include "common/log.h"

#include <atomic>
#include <cstdarg>

namespace vpim {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

constexpr const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kDebug:
      return "DEBUG";
  }
  return "?";
}
}  // namespace

LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }
void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level)); }

namespace detail {
void log_line(LogLevel level, std::string_view tag, const char* fmt, ...) {
  std::fprintf(stderr, "[%s] %.*s: ", level_name(level),
               static_cast<int>(tag.size()), tag.data());
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}
}  // namespace detail

}  // namespace vpim
