// Error type and contract-check helpers.
//
// Contract violations (programming errors, malformed requests that a real
// device would reject) throw VpimError. Expected runtime outcomes (e.g. the
// manager timing out on rank allocation) are reported through status enums
// on the relevant APIs instead.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace vpim {

class VpimError : public std::runtime_error {
 public:
  explicit VpimError(const std::string& what) : std::runtime_error(what) {}
};

// A failure scoped to one guest request, carrying a wire status code
// (virtio::PimStatus). The backend catches it and completes the offending
// request with that status; the frontend rethrows non-OK completions as
// this type so callers can inspect what the device answered.
class VpimStatusError : public VpimError {
 public:
  template <typename Status>
  VpimStatusError(Status status, const std::string& what)
      : VpimError(what), status_(static_cast<std::int32_t>(status)) {}
  std::int32_t status() const { return status_; }

 private:
  std::int32_t status_;
};

[[noreturn]] inline void fail(const std::string& msg) { throw VpimError(msg); }

}  // namespace vpim

// Checks a contract; throws vpim::VpimError with location info on failure.
#define VPIM_CHECK(cond, msg)                                                \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::vpim::fail(std::string(__FILE__) + ":" + std::to_string(__LINE__) +  \
                   ": check `" #cond "` failed: " + (msg));                  \
    }                                                                        \
  } while (0)

// Validates guest-controlled input inside the device model: throws
// vpim::VpimStatusError so the request completes with `status` instead of
// tearing down the host process.
#define VPIM_REQUEST_CHECK(cond, status, msg)                \
  do {                                                       \
    if (!(cond)) {                                           \
      throw ::vpim::VpimStatusError((status), (msg));        \
    }                                                        \
  } while (0)
