// Error type and contract-check helpers.
//
// Contract violations (programming errors, malformed requests that a real
// device would reject) throw VpimError. Expected runtime outcomes (e.g. the
// manager timing out on rank allocation) are reported through status enums
// on the relevant APIs instead.
#pragma once

#include <stdexcept>
#include <string>

namespace vpim {

class VpimError : public std::runtime_error {
 public:
  explicit VpimError(const std::string& what) : std::runtime_error(what) {}
};

[[noreturn]] inline void fail(const std::string& msg) { throw VpimError(msg); }

}  // namespace vpim

// Checks a contract; throws vpim::VpimError with location info on failure.
#define VPIM_CHECK(cond, msg)                                                \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::vpim::fail(std::string(__FILE__) + ":" + std::to_string(__LINE__) +  \
                   ": check `" #cond "` failed: " + (msg));                  \
    }                                                                        \
  } while (0)
