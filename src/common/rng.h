// Seeded deterministic RNG helpers. All workload generators take an explicit
// seed so every experiment is reproducible run to run.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <random>
#include <vector>

namespace vpim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  std::uint64_t next_u64() { return engine_(); }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  double uniform_real(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  // Fills `out` with pseudo-random bytes.
  void fill_bytes(std::uint8_t* out, std::size_t n) {
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
      std::uint64_t v = engine_();
      std::memcpy(out + i, &v, 8);
    }
    if (i < n) {
      std::uint64_t v = engine_();
      std::memcpy(out + i, &v, n - i);
    }
  }

  // Zipfian rank in [0, n) with exponent `s`; used by the synthetic
  // Wikipedia corpus so term frequencies look like natural language.
  std::size_t zipf(std::size_t n, double s = 1.0) {
    // Rejection-inversion would be overkill for corpus generation; a
    // cached-CDF draw is fine at our corpus sizes.
    if (cdf_.size() != n || cdf_s_ != s) {
      cdf_.resize(n);
      double sum = 0.0;
      for (std::size_t k = 0; k < n; ++k) {
        sum += 1.0 / std::pow(static_cast<double>(k + 1), s);
        cdf_[k] = sum;
      }
      for (auto& v : cdf_) v /= sum;
      cdf_s_ = s;
    }
    double u = uniform_real(0.0, 1.0);
    auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<std::size_t>(it - cdf_.begin());
  }

 private:
  std::mt19937_64 engine_;
  std::vector<double> cdf_;
  double cdf_s_ = 0.0;
};

}  // namespace vpim
