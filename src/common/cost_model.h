// Calibrated virtual-time cost model.
//
// Every latency/bandwidth the simulator charges lives here, documented with
// the paper evidence it was calibrated against (see DESIGN.md §4). Benches
// and tests may tweak individual fields to build ablations, but the default
// values are the ones EXPERIMENTS.md reports against the paper.
#pragma once

#include <cstdint>

#include "common/error.h"
#include "common/units.h"

namespace vpim {

struct CostModel {
  // ---- DPU / rank hardware -------------------------------------------
  // UPMEM DPUs on the paper's testbed run at 350 MHz (§5.1).
  double dpu_hz = 350e6;
  // MRAM<->WRAM DMA streaming bandwidth seen by one DPU (order of the
  // ~700 MB/s-1 GB/s reported by PrIM characterizations).
  double mram_dma_gbps = 1.0;
  // Host-side access to a mmap'ed control-interface register (perf mode).
  SimNs ci_op_native_ns = 400;
  // Per-CI-operation handling inside the backend once the request arrived.
  SimNs ci_op_backend_ns = 500;

  // ---- Host data path --------------------------------------------------
  // Byte-interleave copy host<->rank, optimized wide-word implementation
  // ("C/AVX512" path, §4.2). Calibrated so the naive/wide gap reproduces
  // the paper's "up to 343%" improvement.
  double interleave_wide_gbps = 6.0;
  // Naive per-byte implementation ("Rust/AVX2" stand-in). Calibrated to
  // the paper's end-to-end anchor (vPIM-rust ~5.2x native on checksum)
  // rather than the per-function "343%" figure, which is smaller.
  double interleave_naive_gbps = 0.5;
  // Backend copies that gather from scattered 4 KiB guest pages instead of
  // one contiguous host buffer pay a locality penalty.
  double scattered_copy_gbps = 5.0;
  // Host memset bandwidth; a 4 GiB rank reset at 6.7 GB/s gives the
  // paper's ~597 ms average reset time (§4.2).
  double memset_gbps = 7.2;
  // Fixed cost of one safe-mode ioctl into the (simulated) kernel driver.
  SimNs ioctl_ns = 1500;
  // Fixed per-transfer-call software cost on the native SDK path (perf
  // mode): matrix walk, WC-buffer flush, etc. This is the denominator of
  // the paper's 53x small-transfer overhead.
  SimNs native_xfer_fixed_ns = 700;

  // ---- Virtualization transitions ---------------------------------------
  // Guest->VMM queue notify: VMEXIT + KVM dispatch + Firecracker handler
  // entry and wakeup. The paper attributes the dominant overhead to these
  // transitions; the magnitude is calibrated against Firecracker's own
  // ~26x overhead on small block-IO requests (§1), which puts one full
  // guest->VMM->guest round trip in the tens of microseconds.
  SimNs vmexit_notify_ns = 25000;
  // VMM->guest completion: IRQ injection + guest resume.
  SimNs irq_inject_ns = 10000;
  // Fixed frontend work to build any request (descriptor setup etc.).
  SimNs frontend_request_fixed_ns = 2000;
  // vhost-style transition (§7 future work): the kernel-side worker is
  // kicked without a full exit to the userspace VMM, and completes with a
  // lightweight signal instead of a VMM-injected IRQ.
  SimNs vhost_notify_ns = 6000;
  SimNs vhost_complete_ns = 3000;

  // ---- Frontend per-page costs ------------------------------------------
  // Page management: reallocating user-space pages to kernel pointers
  // (Fig 13 "Page" step).
  SimNs page_mgmt_ns_per_page = 150;
  // Serializing one page pointer into the page buffer (Fig 13 "Ser").
  SimNs serialize_ns_per_page = 20;
  // Per-DPU metadata handling during (de)serialization.
  SimNs per_dpu_metadata_ns = 100;

  // ---- Backend per-page costs -------------------------------------------
  // Deserializing one page entry (Fig 13 "Deser").
  SimNs deserialize_ns_per_page = 20;
  // GPA->HVA translation of one page entry, before dividing across the
  // translation worker threads (§4.2, "several threads").
  SimNs gpa_translate_ns_per_page = 40;
  std::uint32_t translate_threads = 8;
  // Number of DPUs operated on concurrently by the backend (one chip).
  std::uint32_t backend_op_threads = 8;
  // Cost of handing an operation to a dedicated thread (parallel handling
  // optimization, §4.2) and of completing the event afterwards.
  SimNs thread_dispatch_ns = 5000;

  // Fixed handling cost per matrix entry in the backend, divided across
  // the 8 operation worker threads (one chip's worth of DPUs at a time).
  SimNs backend_per_entry_ns = 400;

  // ---- Guest-side small copies -------------------------------------------
  // memcpy bandwidth inside the guest (batch staging, cache hits).
  double guest_memcpy_gbps = 8.0;
  // Fixed cost of serving a read from the prefetch cache.
  SimNs cache_hit_fixed_ns = 120;

  // ---- Oversubscription (§7 future work) ---------------------------------
  // Emulated ranks run DPU programs on the host at a fraction of silicon
  // speed ("running applications at reduced performance").
  double emulation_slowdown = 25.0;
  // Host-memory copies to/from an emulated rank (plain memcpy).
  double emulated_copy_gbps = 8.0;

  // ---- Manager ------------------------------------------------------------
  // Round trip VM->manager over the UNIX socket plus bookkeeping; the paper
  // reports ~36 ms average for an allocation hitting a NAAV rank.
  SimNs manager_alloc_rt_ns = 36 * kMs;
  // Observer-thread polling period for sysfs rank status.
  SimNs manager_observe_period_ns = 10 * kMs;
  // Admission decision on the submit path (ISSUE 8): token-bucket refill,
  // budget check and the bookkeeping around a typed reject. A few cache
  // lines and a branch — far below one ioctl.
  SimNs admission_check_ns = 300;

  // ---- KV service (ISSUE 10) ----------------------------------------------
  // Host-side hot-key cache lookup on the KV enqueue path: one hash probe
  // plus LRU bookkeeping, served without touching the device.
  SimNs kv_cache_hit_ns = 150;

  // ---- Faults & recovery --------------------------------------------------
  // Base backoff before the backend retries a transiently faulted rank
  // operation; doubles per attempt up to VpimConfig::fault_max_retries.
  SimNs fault_retry_backoff_ns = 200 * kUs;
  // Reset-verify probe of a quarantined rank (per-DPU pattern write/read
  // through safe mode), charged on top of the erase itself.
  SimNs rank_probe_ns = 2 * kMs;
  // Host streaming bandwidth while rescuing MRAM off a dying rank during a
  // wrank migration (degraded vs the healthy interleave path).
  double rank_rescue_gbps = 3.0;

  // ---- VM lifecycle ---------------------------------------------------------
  // Base Firecracker microVM boot (~125 ms per the Firecracker paper).
  SimNs vm_boot_base_ns = 125 * kMs;
  // Adding one vUPMEM device increases boot time by up to 2 ms (§3.2).
  SimNs vupmem_boot_ns = 2 * kMs;

  // ---- Helpers ---------------------------------------------------------
  // Time to move `bytes` at `gbps` gigabytes/second.
  static SimNs bytes_time(std::uint64_t bytes, double gbps) {
    VPIM_CHECK(gbps > 0.0, "bandwidth must be positive");
    return static_cast<SimNs>(static_cast<double>(bytes) / gbps);
  }

  SimNs dpu_cycles_time(std::uint64_t cycles) const {
    return static_cast<SimNs>(static_cast<double>(cycles) * 1e9 / dpu_hz);
  }
};

}  // namespace vpim
