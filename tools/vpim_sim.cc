// vpim-sim: command-line explorer for the simulated vPIM stack.
//
// Runs any PrIM application (or the checksum / index-search
// microbenchmarks) natively and/or under a chosen vPIM configuration and
// prints the paper-style segment breakdown plus the virtualization
// internals.
//
// Examples:
//   vpim-sim --app NW --dpus 60
//   vpim-sim --app TRNS --dpus 480 --config vPIM-C
//   vpim-sim --app checksum --mb 20 --config vPIM+vhost
//   vpim-sim --list
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "common/fault.h"
#include "common/obs/chrome_trace.h"
#include "common/obs/trace.h"

#include "prim/app.h"
#include "prim/micro.h"
#include "sdk/native.h"
#include "vpim/guest_platform.h"
#include "vpim/host.h"
#include "vpim/vpim_vm.h"

using namespace vpim;

namespace {

struct Options {
  std::string app = "VA";
  std::uint32_t dpus = 60;
  std::uint32_t tasklets = 16;
  double scale = 1.0;
  std::uint64_t mb = 20;  // checksum file size per DPU
  std::uint32_t depth = 0;  // SQ depth; 0 = VPIM_DEPTH env, else 1
  std::string config = "vPIM";
  std::string trace_path;   // --trace FILE: CSV of the vPIM run's spans
  std::string chrome_path;  // --chrome-trace FILE: chrome://tracing JSON
  std::string metrics_path;  // --metrics FILE: Prometheus text dump
  bool native_only = false;
  bool vpim_only = false;
  // --storm SEED: run the vPIM side under a correlated fault storm
  // (bursts of transients + ECC + a lost completion + rank death on one
  // victim rank). 0 = off. Recovery is transparent when the retry budget
  // holds; the knobs in README "Fault injection" tune that budget.
  std::uint64_t storm_seed = 0;

  bool tracing() const {
    return !trace_path.empty() || !chrome_path.empty();
  }
};

core::VpimConfig config_by_label(const std::string& label) {
  for (const auto& preset :
       {core::VpimConfig::rust(), core::VpimConfig::c_only(),
        core::VpimConfig::with_prefetch(), core::VpimConfig::with_batching(),
        core::VpimConfig::with_prefetch_batching(),
        core::VpimConfig::sequential(), core::VpimConfig::full(),
        core::VpimConfig::vhost()}) {
    if (preset.label == label) return preset;
  }
  std::fprintf(stderr,
               "unknown config '%s' (try vPIM-rust, vPIM-C, vPIM+P, "
               "vPIM+B, vPIM+PB, vPIM-Seq, vPIM, vPIM+vhost)\n",
               label.c_str());
  std::exit(2);
}

int usage() {
  std::printf(
      "usage: vpim-sim [--app NAME] [--dpus N] [--tasklets N]\n"
      "                [--scale X] [--mb N] [--config LABEL] [--depth N]\n"
      "                [--trace FILE] [--chrome-trace FILE]\n"
      "                [--metrics FILE] [--storm SEED]\n"
      "                [--native-only | --vpim-only] [--list]\n"
      "  NAME: a PrIM app (--list), 'checksum', or 'search'\n"
      "  --depth:        submission-queue depth (default: VPIM_DEPTH or 1)\n"
      "  --storm:        seeded correlated fault storm under the vPIM run\n"
      "  --trace:        span stream as CSV\n"
      "  --chrome-trace: span stream as chrome://tracing JSON\n"
      "  --metrics:      Prometheus-style metrics snapshot\n");
  return 2;
}

void print_breakdown(const char* who, const prim::AppResult& res) {
  std::printf(
      "%-8s CPU-DPU %9.2f ms | DPU %9.2f ms | Inter-DPU %9.2f ms | "
      "DPU-CPU %9.2f ms | total %9.2f ms | %s\n",
      who, ns_to_ms(res.breakdown[Segment::kCpuDpu]),
      ns_to_ms(res.breakdown[Segment::kDpu]),
      ns_to_ms(res.breakdown[Segment::kInterDpu]),
      ns_to_ms(res.breakdown[Segment::kDpuCpu]), ns_to_ms(res.total()),
      res.correct ? "correct" : "WRONG RESULT");
}

void dump_observability(const Options& opt, core::Host& host,
                        const obs::Tracer& tracer) {
  if (!opt.trace_path.empty()) {
    std::ofstream out(opt.trace_path);
    tracer.dump_csv(out);
    std::printf("trace: %zu spans -> %s\n", tracer.spans().size(),
                opt.trace_path.c_str());
  }
  if (!opt.chrome_path.empty()) {
    std::ofstream out(opt.chrome_path);
    obs::export_chrome_trace(tracer, out);
    std::printf("chrome trace: %zu spans -> %s (open in ui.perfetto.dev "
                "or chrome://tracing)\n",
                tracer.spans().size(), opt.chrome_path.c_str());
  }
  if (!opt.metrics_path.empty()) {
    std::ofstream out(opt.metrics_path);
    out << host.obs.metrics.prometheus_text();
    std::printf("metrics: %zu families -> %s\n",
                host.obs.metrics.family_count(), opt.metrics_path.c_str());
  }
}

void print_device_stats(const core::DeviceStats& stats) {
  std::printf(
      "internals: %lu messages / %lu doorbells | batching %lu absorbed / "
      "%lu flushes | cache %lu hits / %lu misses / %lu fills\n",
      static_cast<unsigned long>(stats.notifies + stats.coalesced_notifies),
      static_cast<unsigned long>(stats.doorbells),
      static_cast<unsigned long>(stats.batched_writes),
      static_cast<unsigned long>(stats.batch_flushes),
      static_cast<unsigned long>(stats.cache_hits),
      static_cast<unsigned long>(stats.cache_misses),
      static_cast<unsigned long>(stats.cache_fills));
}

// Same storm recipe as the nightly chaos soak: two correlated bursts of
// width 2 drawn from the first 64 rank ops. Everything derives from the
// seed, so a storm run reproduces exactly at any VPIM_THREADS.
void maybe_install_storm(const Options& opt, core::Host& host) {
  if (opt.storm_seed == 0) return;
  FaultPlanConfig fcfg;
  fcfg.seed = opt.storm_seed;
  // Tight trigger window: a single app run issues tens of rank ops, not
  // hundreds, and a burst scheduled past the last op never fires.
  fcfg.max_op = 12;
  fcfg.storm_bursts = 2;
  fcfg.storm_width = 2;
  host.install_fault_plan(
      FaultPlan::generate(fcfg, host.machine.nr_ranks()));
  std::printf("storm: seed %llu, 2 bursts x width 2\n",
              static_cast<unsigned long long>(opt.storm_seed));
}

void report_storm(const core::Host& host) {
  if (!host.fault_plan) return;
  std::printf("storm: %zu fault events fired (recovery time is charged "
              "to the figures above)\n",
              host.fault_plan->fired().size());
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--app") {
      opt.app = value();
    } else if (arg == "--dpus") {
      opt.dpus = static_cast<std::uint32_t>(std::atoi(value()));
    } else if (arg == "--tasklets") {
      opt.tasklets = static_cast<std::uint32_t>(std::atoi(value()));
    } else if (arg == "--scale") {
      opt.scale = std::atof(value());
    } else if (arg == "--mb") {
      opt.mb = static_cast<std::uint64_t>(std::atoll(value()));
    } else if (arg == "--config") {
      opt.config = value();
    } else if (arg == "--depth") {
      opt.depth = static_cast<std::uint32_t>(std::atoi(value()));
    } else if (arg == "--trace") {
      opt.trace_path = value();
    } else if (arg == "--chrome-trace") {
      opt.chrome_path = value();
    } else if (arg == "--metrics") {
      opt.metrics_path = value();
    } else if (arg == "--storm") {
      opt.storm_seed = static_cast<std::uint64_t>(std::atoll(value()));
    } else if (arg == "--native-only") {
      opt.native_only = true;
    } else if (arg == "--vpim-only") {
      opt.vpim_only = true;
    } else if (arg == "--list") {
      std::printf("PrIM applications:");
      for (const auto& name : prim::app_names()) {
        std::printf(" %s", name.c_str());
      }
      std::printf("\nmicrobenchmarks: checksum search\n");
      return 0;
    } else {
      return usage();
    }
  }

  core::VpimConfig config = config_by_label(opt.config);
  config.queue_depth = opt.depth;  // 0 falls through to VPIM_DEPTH / 1
  const std::uint32_t nr_devices = (opt.dpus + 59) / 60;
  std::printf("machine: 8 ranks x 60 DPUs @350 MHz | app %s, %u DPUs, "
              "%u tasklets, scale %.2f | config %s\n",
              opt.app.c_str(), opt.dpus, opt.tasklets, opt.scale,
              config.label.c_str());

  SimNs native_total = 0, vpim_total = 0;
  if (opt.app == "checksum" || opt.app == "search") {
    auto run_micro = [&](sdk::Platform& platform) -> SimNs {
      if (opt.app == "checksum") {
        prim::ChecksumParams prm;
        prm.nr_dpus = opt.dpus;
        prm.nr_tasklets = opt.tasklets;
        prm.file_bytes = opt.mb * kMiB;
        const auto res = prim::run_checksum(platform, prm);
        std::printf("  %8.2f ms, %s, ops: %lu W / %lu R / %lu CI\n",
                    ns_to_ms(res.total),
                    res.correct ? "correct" : "WRONG",
                    static_cast<unsigned long>(res.write_ops),
                    static_cast<unsigned long>(res.read_ops),
                    static_cast<unsigned long>(res.ci_ops));
        return res.total;
      }
      prim::IndexSearchParams prm;
      prm.nr_dpus = opt.dpus;
      prm.nr_tasklets = opt.tasklets;
      const auto res = prim::run_index_search(platform, prm);
      std::printf("  %8.2f ms, %s, index %.1f MB, %lu matches\n",
                  ns_to_ms(res.total), res.correct ? "correct" : "WRONG",
                  static_cast<double>(res.index_bytes) / (1 << 20),
                  static_cast<unsigned long>(res.matches));
      return res.total;
    };
    if (!opt.vpim_only) {
      core::Host host;
      sdk::NativePlatform native(host.drv, "vpim-sim");
      std::printf("native:\n");
      native_total = run_micro(native);
    }
    if (!opt.native_only) {
      core::Host host;
      maybe_install_storm(opt, host);
      core::VpimVm vm(host, {.name = "vpim-sim"}, nr_devices, config);
      core::GuestPlatform guest(vm);
      obs::Tracer tracer;
      if (opt.tracing()) host.attach_tracer(&tracer);
      std::printf("%s:\n", config.label.c_str());
      try {
        vpim_total = run_micro(guest);
      } catch (const VpimStatusError& e) {
        std::printf("  run ended with typed status: %s\n", e.what());
      }
      print_device_stats(vm.device(0).stats);
      report_storm(host);
      dump_observability(opt, host, tracer);
    }
  } else {
    prim::AppParams prm;
    prm.nr_dpus = opt.dpus;
    prm.nr_tasklets = opt.tasklets;
    prm.scale = opt.scale;
    if (!opt.vpim_only) {
      core::Host host;
      sdk::NativePlatform native(host.drv, "vpim-sim");
      const auto res = prim::make_app(opt.app)->run(native, prm);
      print_breakdown("native", res);
      native_total = res.total();
    }
    if (!opt.native_only) {
      core::Host host;
      maybe_install_storm(opt, host);
      core::VpimVm vm(host, {.name = "vpim-sim"}, nr_devices, config);
      core::GuestPlatform guest(vm);
      obs::Tracer tracer;
      if (opt.tracing()) host.attach_tracer(&tracer);
      try {
        const auto res = prim::make_app(opt.app)->run(guest, prm);
        print_breakdown(config.label.c_str(), res);
        vpim_total = res.total();
      } catch (const VpimStatusError& e) {
        std::printf("  run ended with typed status: %s\n", e.what());
      }
      print_device_stats(vm.device(0).stats);
      report_storm(host);
      dump_observability(opt, host, tracer);
    }
  }
  if (native_total > 0 && vpim_total > 0) {
    std::printf("overhead: %.2fx\n", static_cast<double>(vpim_total) /
                                         static_cast<double>(native_total));
  }
  return 0;
}
