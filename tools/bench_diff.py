#!/usr/bin/env python3
"""Compare BENCH_*.json results against committed baselines.

Two gates, one file:

* simulated_ns — virtual time is a pure function of the cost model and the
  workload, independent of host speed, thread count, and load. Any drift
  means the model or the code path changed, so the default tolerance is
  exact; --rel-tol exists only to loosen the gate deliberately.
* wall_ms — host wall-clock, gated only when --wall-tol is given (CI runs
  each bench several times and passes every run via repeated --current /
  --current-dir; the median per point absorbs scheduler noise). The gate is
  one-sided: only a slowdown beyond the tolerance fails, a speedup prints a
  reminder to refresh the baselines.

Points that carry percentile columns — any key matching pNN_*_ns, e.g.
p99_admitted_ns (overload) or p50_alloc_ns/p99_alloc_ns (manager_policies)
— get a third gate: latency percentiles in *virtual* time, checked per run
at --p99-tol (default 0.10). Like simulated_ns they are deterministic, but
they sit on percentiles so a deliberate cost-model retune may move them
slightly; hence a tolerance rather than an exact match.

Usage:
  tools/bench_diff.py --baseline bench/baselines/BENCH_fig12.json \
                      --current build/bench/BENCH_fig12.json
  tools/bench_diff.py --baseline-dir bench/baselines \
                      --current-dir run1 --current-dir run2 \
                      --current-dir run3 --wall-tol 0.10

Exit status: 0 when every point matches within tolerance, 1 on drift,
missing points, or unreadable files.
"""

import argparse
import json
import pathlib
import re
import statistics
import sys

# Percentile-in-virtual-time columns: p50_alloc_ns, p99_admitted_ns, ...
PERCENTILE_RE = re.compile(r"^p\d+_\w+_ns$")


def load_points(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    return {p["name"]: (int(p["simulated_ns"]), float(p.get("wall_ms", 0.0)),
                        {k: int(v) for k, v in p.items()
                         if PERCENTILE_RE.match(k)})
            for p in doc["points"]}


def diff_simulated(baseline_path, base, current_path, cur, rel_tol):
    ok = True
    for name, (expect, _, _) in sorted(base.items()):
        if name not in cur:
            print(f"FAIL {name}: missing from {current_path}")
            ok = False
            continue
        got = cur[name][0]
        drift = abs(got - expect) / expect if expect else (0.0 if got == expect else 1.0)
        if drift > rel_tol:
            print(f"FAIL {name}: simulated_ns {got} vs baseline {expect} "
                  f"({drift * 100:.3f}% > {rel_tol * 100:.3f}%)")
            ok = False
        elif got != expect:
            # Within tolerance but not exact: surface it — virtual time
            # should never drift at all.
            print(f"WARN {name}: simulated_ns {got} vs baseline {expect} "
                  f"({drift * 100:.4f}%)")
        else:
            print(f"ok   {name}: {got} ns")
    for name in sorted(set(cur) - set(base)):
        print(f"WARN {name}: not in baseline {baseline_path} "
              f"(new point? refresh baselines)")
    return ok


def diff_percentiles(baseline_path, base, current_path, cur, p99_tol):
    ok = True
    for name, (_, _, expected_cols) in sorted(base.items()):
        for col, expect in sorted(expected_cols.items()):
            if name not in cur or col not in cur[name][2]:
                print(f"FAIL {name}: {col} in baseline but missing "
                      f"from {current_path}")
                ok = False
                continue
            got = cur[name][2][col]
            drift = abs(got - expect) / expect if expect else (0.0 if got == expect else 1.0)
            if drift > p99_tol:
                print(f"FAIL {name}: {col} {got} vs baseline {expect} "
                      f"({drift * 100:.1f}% > {p99_tol * 100:.0f}%)")
                ok = False
            else:
                print(f"ok   {name}: {col} {got} ns ({drift * 100:+.1f}%)")
    return ok


def diff_wall(base, runs, wall_tol):
    ok = True
    for name, (_, expect, _) in sorted(base.items()):
        walls = [run[name][1] for run in runs if name in run]
        if not walls or expect <= 0.0:
            continue
        median = statistics.median(walls)
        drift = (median - expect) / expect
        if drift > wall_tol:
            print(f"FAIL {name}: wall_ms median {median:.3f} vs baseline "
                  f"{expect:.3f} (+{drift * 100:.1f}% > {wall_tol * 100:.0f}%, "
                  f"{len(walls)} runs)")
            ok = False
        elif drift < -wall_tol:
            print(f"WARN {name}: wall_ms median {median:.3f} vs baseline "
                  f"{expect:.3f} ({drift * 100:.1f}% — refresh baselines to "
                  f"lock the speedup in)")
        else:
            print(f"ok   {name}: wall {median:.3f} ms "
                  f"({drift * +100:+.1f}%, {len(walls)} runs)")
    return ok


def diff_one(baseline_path, current_paths, rel_tol, wall_tol, p99_tol):
    try:
        base = load_points(baseline_path)
    except (OSError, ValueError, KeyError) as e:
        print(f"FAIL {baseline_path}: unreadable baseline ({e})")
        return False
    runs = []
    ok = True
    for current_path in current_paths:
        try:
            cur = load_points(current_path)
        except (OSError, ValueError, KeyError) as e:
            print(f"FAIL {current_path}: unreadable result ({e})")
            ok = False
            continue
        runs.append(cur)
        # Every run must hold the simulated line, not just the first: a run
        # that drifts only sometimes is a determinism bug.
        ok &= diff_simulated(baseline_path, base, current_path, cur, rel_tol)
        # Tail latency is virtual time too, so every run must hold it.
        ok &= diff_percentiles(baseline_path, base, current_path, cur,
                               p99_tol)
    if not runs:
        return False
    if wall_tol is not None:
        ok &= diff_wall(base, runs, wall_tol)
    return ok


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline", help="single baseline JSON")
    ap.add_argument("--current", action="append", default=[],
                    help="result JSON (repeat for median-of-N wall gating)")
    ap.add_argument("--baseline-dir", help="directory of BENCH_*.json baselines")
    ap.add_argument("--current-dir", action="append", default=[],
                    help="directory holding fresh BENCH_*.json "
                         "(repeat for median-of-N wall gating)")
    ap.add_argument("--rel-tol", type=float, default=0.005,
                    help="max relative simulated_ns drift per point "
                         "(default 0.005)")
    ap.add_argument("--wall-tol", type=float, default=None,
                    help="max relative wall_ms slowdown of the per-point "
                         "median across runs; wall gating is off unless set "
                         "(e.g. 0.10)")
    ap.add_argument("--p99-tol", type=float, default=0.10,
                    help="max relative drift per percentile column "
                         "(pNN_*_ns) for baselines that carry one "
                         "(default 0.10)")
    args = ap.parse_args()

    pairs = []
    if args.baseline and args.current:
        pairs.append((args.baseline, args.current))
    elif args.baseline_dir and args.current_dir:
        baselines = sorted(pathlib.Path(args.baseline_dir).glob("BENCH_*.json"))
        if not baselines:
            print(f"FAIL no BENCH_*.json baselines in {args.baseline_dir}")
            return 1
        for b in baselines:
            pairs.append((str(b), [str(pathlib.Path(d) / b.name)
                                   for d in args.current_dir]))
    else:
        ap.error("need --baseline/--current or --baseline-dir/--current-dir")

    ok = True
    for baseline_path, current_paths in pairs:
        ok &= diff_one(baseline_path, current_paths, args.rel_tol,
                       args.wall_tol, args.p99_tol)
    print("bench-diff:", "PASS" if ok else "FAIL")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
