#!/usr/bin/env python3
"""Compare BENCH_*.json simulated results against committed baselines.

The figure benches report *virtual* (simulated) nanoseconds, which are a
pure function of the cost model and the workload — independent of host
speed, thread count, and load. Any drift therefore means the model or the
code path changed, so the default tolerance is exact; --rel-tol exists
only to loosen the gate deliberately.

Usage:
  tools/bench_diff.py --baseline bench/baselines/BENCH_fig12.json \
                      --current build/bench/BENCH_fig12.json
  tools/bench_diff.py --baseline-dir bench/baselines --current-dir build/bench

Exit status: 0 when every point matches within tolerance, 1 on drift,
missing points, or unreadable files.
"""

import argparse
import json
import pathlib
import sys


def load_points(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    return {p["name"]: int(p["simulated_ns"]) for p in doc["points"]}


def diff_one(baseline_path, current_path, rel_tol):
    try:
        base = load_points(baseline_path)
    except (OSError, ValueError, KeyError) as e:
        print(f"FAIL {baseline_path}: unreadable baseline ({e})")
        return False
    try:
        cur = load_points(current_path)
    except (OSError, ValueError, KeyError) as e:
        print(f"FAIL {current_path}: unreadable result ({e})")
        return False

    ok = True
    for name, expect in sorted(base.items()):
        if name not in cur:
            print(f"FAIL {name}: missing from {current_path}")
            ok = False
            continue
        got = cur[name]
        drift = abs(got - expect) / expect if expect else (0.0 if got == expect else 1.0)
        if drift > rel_tol:
            print(f"FAIL {name}: simulated_ns {got} vs baseline {expect} "
                  f"({drift * 100:.3f}% > {rel_tol * 100:.3f}%)")
            ok = False
        elif got != expect:
            # Within tolerance but not exact: surface it — virtual time
            # should never drift at all.
            print(f"WARN {name}: simulated_ns {got} vs baseline {expect} "
                  f"({drift * 100:.4f}%)")
        else:
            print(f"ok   {name}: {got} ns")
    for name in sorted(set(cur) - set(base)):
        print(f"WARN {name}: not in baseline {baseline_path} "
              f"(new point? refresh baselines)")
    return ok


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline", help="single baseline JSON")
    ap.add_argument("--current", help="single result JSON")
    ap.add_argument("--baseline-dir", help="directory of BENCH_*.json baselines")
    ap.add_argument("--current-dir", help="directory holding fresh BENCH_*.json")
    ap.add_argument("--rel-tol", type=float, default=0.005,
                    help="max relative drift per point (default 0.005)")
    args = ap.parse_args()

    pairs = []
    if args.baseline and args.current:
        pairs.append((args.baseline, args.current))
    elif args.baseline_dir and args.current_dir:
        baselines = sorted(pathlib.Path(args.baseline_dir).glob("BENCH_*.json"))
        if not baselines:
            print(f"FAIL no BENCH_*.json baselines in {args.baseline_dir}")
            return 1
        for b in baselines:
            pairs.append((str(b), str(pathlib.Path(args.current_dir) / b.name)))
    else:
        ap.error("need --baseline/--current or --baseline-dir/--current-dir")

    ok = True
    for baseline_path, current_path in pairs:
        ok &= diff_one(baseline_path, current_path, args.rel_tol)
    print("bench-diff:", "PASS" if ok else "FAIL")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
