#!/usr/bin/env python3
"""Harvest property-test seeds and failure reproducers from a test log.

Every property run prints a seed line, and every failure prints a
one-line reproducer (see src/common/proptest/proptest.h):

    [prop] <name>: base_seed=<n> iterations=<k>
    [prop] FAIL <name>: VPIM_PROP_SEED=<n> replays <name> | <msg> | minimal: <repr>

The nightly workflow runs the prop-labeled suites at 50x iterations and
feeds the captured log through this script, so the exact seed budget of
every run is recorded in the job output and any failure surfaces its
copy-pasteable `VPIM_PROP_SEED=<n> ctest -R <suite>` reproducer even if
the gtest output scrolled away.

Usage:  tools/prop_seeds.py <logfile> [<logfile>...]
Exit status: 0 when no FAIL reproducers were found, 1 otherwise.
"""

import re
import sys

SEED_RE = re.compile(r"\[prop\] (?P<name>[\w.\-]+): base_seed=(?P<seed>\d+) "
                     r"iterations=(?P<iters>\d+)")
FAIL_RE = re.compile(r"\[prop\] FAIL (?P<name>[\w.\-]+): (?P<repro>.*)")


def main(paths):
    runs = {}
    failures = []
    for path in paths:
        try:
            with open(path, errors="replace") as f:
                for line in f:
                    if m := SEED_RE.search(line):
                        key = (m["name"], int(m["seed"]), int(m["iters"]))
                        runs[key] = runs.get(key, 0) + 1
                    if m := FAIL_RE.search(line):
                        failures.append((m["name"], m["repro"].strip()))
        except OSError as e:
            print(f"prop_seeds: cannot read {path}: {e}", file=sys.stderr)
            return 1

    print(f"prop_seeds: {len(runs)} distinct property runs")
    for (name, seed, iters), count in sorted(runs.items()):
        rep = f" x{count}" if count > 1 else ""
        print(f"  {name}: base_seed={seed} iterations={iters}{rep}")

    if failures:
        print(f"\nprop_seeds: {len(failures)} FAILURE(S) — reproduce with:")
        for name, repro in failures:
            print(f"  {name}: {repro}")
        return 1
    print("prop_seeds: no failures")
    return 0


if __name__ == "__main__":
    if len(sys.argv) < 2:
        print(__doc__)
        sys.exit(2)
    sys.exit(main(sys.argv[1:]))
