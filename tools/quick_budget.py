#!/usr/bin/env python3
"""Gate the quick test tier's wall-clock time against a committed budget.

The quick tier (`ctest -L quick`) is the repo's fail-fast signal: it is
supposed to stay well under a minute so every push gets a verdict before
the slow/prop tiers spin up. This script turns that intent into a gate:

  tools/quick_budget.py --elapsed <seconds> [--budget tools/quick_tier_budget.json]

* elapsed >  budget_seconds                -> FAIL (exit 1)
* elapsed >= warn_fraction * budget        -> WARN (exit 0, loud)
* otherwise                                -> ok

Tests that legitimately outgrow the budget should move to the slow tier
(drop the `quick` label); raising budget_seconds is a deliberate,
reviewed change to the same committed file.
"""

import argparse
import json
import sys


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--elapsed", type=float, required=True,
                    help="measured wall-clock seconds of `ctest -L quick`")
    ap.add_argument("--budget", default="tools/quick_tier_budget.json",
                    help="committed budget file")
    args = ap.parse_args()

    try:
        with open(args.budget, encoding="utf-8") as f:
            doc = json.load(f)
        budget = float(doc["budget_seconds"])
        warn_at = budget * float(doc.get("warn_fraction", 0.8))
    except (OSError, ValueError, KeyError) as e:
        print(f"FAIL quick-budget: unreadable budget file {args.budget} ({e})")
        return 1

    used = 100.0 * args.elapsed / budget if budget else float("inf")
    if args.elapsed > budget:
        print(f"FAIL quick tier took {args.elapsed:.1f}s — over the "
              f"{budget:.0f}s budget ({used:.0f}%). Move tests to the slow "
              f"tier or raise {args.budget} deliberately.")
        return 1
    if args.elapsed >= warn_at:
        print(f"WARN quick tier took {args.elapsed:.1f}s — {used:.0f}% of "
              f"the {budget:.0f}s budget (warn threshold "
              f"{warn_at:.0f}s). Headroom is running out.")
        return 0
    print(f"ok   quick tier took {args.elapsed:.1f}s "
          f"({used:.0f}% of the {budget:.0f}s budget)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
