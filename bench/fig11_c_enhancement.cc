// Fig 11: checksum under vPIM-rust (naive data path) vs vPIM-C (wide
// path) vs native — (a) varying #DPUs at 60 MB/DPU, (b) varying file size
// at 60 DPUs. Paper: vPIM-rust ~5.2x native on average, vPIM-C ~1.4x.
#include <benchmark/benchmark.h>

#include <map>

#include "bench/bench_util.h"
#include "common/stats.h"

namespace vpim::bench {
namespace {

struct Cell {
  SimNs native = 0;
  SimNs rust = 0;
  SimNs c = 0;
};
std::map<std::string, Cell> g_cells;

void run_cell(benchmark::State& state, const std::string& key,
              std::uint32_t dpus, std::uint64_t mb, int system) {
  prim::ChecksumParams prm;
  prm.nr_dpus = dpus;
  prm.file_bytes = static_cast<std::uint64_t>(
      static_cast<double>(mb * kMiB) * env_scale());
  for (auto _ : state) {
    prim::ChecksumResult res;
    if (system == 0) {
      NativeRig rig;
      res = prim::run_checksum(rig.platform, prm);
    } else {
      // The rust/C comparison predates prefetch/batching (Table 2).
      VmRig rig(system == 1 ? core::VpimConfig::rust()
                            : core::VpimConfig::c_only(),
                (dpus + 59) / 60);
      res = prim::run_checksum(rig.platform, prm);
    }
    state.SetIterationTime(ns_to_s(res.total));
    state.counters["correct"] = res.correct ? 1 : 0;
    Cell& cell = g_cells[key];
    if (system == 0) cell.native = res.total;
    if (system == 1) cell.rust = res.total;
    if (system == 2) cell.c = res.total;
  }
}

void add(const std::string& key, std::uint32_t dpus, std::uint64_t mb) {
  static const char* kSystems[] = {"native", "vPIM-rust", "vPIM-C"};
  for (int system = 0; system < 3; ++system) {
    const std::string name =
        "fig11/" + key + "/" + kSystems[system];
    benchmark::RegisterBenchmark(
        name.c_str(),
        [=](benchmark::State& state) {
          run_cell(state, key, dpus, mb, system);
        })
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

void print_summary() {
  print_header("Fig 11 - C enhancement (checksum)",
               "vPIM-rust ~5.2x native on average; vPIM-C ~1.4x; the C "
               "rewrite improves the data path by up to 343%");
  std::printf("%-14s | %10s | %10s | %10s | %9s | %9s\n", "config",
              "native", "vPIM-rust", "vPIM-C", "rust ovhd", "C ovhd");
  std::vector<double> rust_ov, c_ov;
  for (const auto& [key, cell] : g_cells) {
    std::printf("%-14s | %8.1fms | %8.1fms | %8.1fms | %8.2fx | %8.2fx\n",
                key.c_str(), ns_to_ms(cell.native), ns_to_ms(cell.rust),
                ns_to_ms(cell.c), ratio(cell.rust, cell.native),
                ratio(cell.c, cell.native));
    rust_ov.push_back(ratio(cell.rust, cell.native));
    c_ov.push_back(ratio(cell.c, cell.native));
  }
  std::printf("\naverage overhead: vPIM-rust %.2fx (paper ~5.2x), vPIM-C "
              "%.2fx (paper ~1.4x)\n",
              geomean(rust_ov), geomean(c_ov));
}

}  // namespace
}  // namespace vpim::bench

int main(int argc, char** argv) {
  using namespace vpim::bench;
  benchmark::Initialize(&argc, argv);
  for (std::uint32_t dpus : {1u, 16u, 60u}) {
    add("a_dpus:" + std::string(dpus < 10 ? "0" : "") +
            std::to_string(dpus),
        dpus, 60);
  }
  for (std::uint64_t mb : {8u, 40u, 60u}) {
    add("b_mb:" + std::string(mb < 10 ? "0" : "") + std::to_string(mb), 60,
        mb);
  }
  benchmark::RunSpecifiedBenchmarks();
  print_summary();
  benchmark::Shutdown();
  return 0;
}
