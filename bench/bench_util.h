// Shared scaffolding for the figure-reproduction benches.
//
// Every bench builds a fresh simulated host with the paper's testbed
// geometry (8 ranks x 60 functional DPUs at 350 MHz, §5.1), runs the
// workload natively and/or under vPIM, and reports *virtual* time. Bench
// binaries use google-benchmark with manual time: the reported seconds are
// simulated seconds, not wall-clock.
//
// Set VPIM_BENCH_SCALE (e.g. 0.05) to shrink datasets for smoke runs; the
// default 1.0 reproduces the paper-scale shapes recorded in EXPERIMENTS.md.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "prim/app.h"
#include "prim/micro.h"
#include "sdk/native.h"
#include "vpim/guest_platform.h"
#include "vpim/host.h"
#include "vpim/vpim_vm.h"

namespace vpim::bench {

inline double env_scale() {
  if (const char* s = std::getenv("VPIM_BENCH_SCALE")) {
    const double v = std::atof(s);
    if (v > 0) return v;
  }
  return 1.0;
}

inline core::ManagerConfig bench_manager() {
  core::ManagerConfig cfg;
  cfg.retry_wait_ns = 10 * kMs;
  cfg.max_attempts = 3;
  return cfg;
}

// A fresh host per measurement keeps virtual clocks independent.
struct NativeRig {
  core::Host host{upmem::MachineConfig{}, CostModel{}, bench_manager()};
  sdk::NativePlatform platform{host.drv, "bench-native"};
};

struct VmRig {
  explicit VmRig(const core::VpimConfig& config,
                 std::uint32_t nr_devices = 8, std::uint32_t vcpus = 16,
                 std::uint64_t guest_ram = 2 * kGiB)
      : vm(host,
           {.name = "bench-vm",
            .vcpus = vcpus,
            .guest_ram_bytes = guest_ram},
           nr_devices, config),
        platform(vm) {}

  core::Host host{upmem::MachineConfig{}, CostModel{}, bench_manager()};
  core::VpimVm vm;
  core::GuestPlatform platform;
};

inline prim::AppResult run_prim_native(const std::string& app,
                                       const prim::AppParams& params) {
  NativeRig rig;
  return prim::make_app(app)->run(rig.platform, params);
}

inline prim::AppResult run_prim_vpim(const std::string& app,
                                     const prim::AppParams& params,
                                     const core::VpimConfig& config) {
  VmRig rig(config);
  return prim::make_app(app)->run(rig.platform, params);
}

// ---- small output helpers ------------------------------------------------

inline void print_header(const char* figure, const char* claim) {
  std::printf("\n============================================================"
              "====================\n");
  std::printf("%s\n", figure);
  std::printf("paper: %s\n", claim);
  std::printf("=============================================================="
              "==================\n");
}

inline double ratio(SimNs a, SimNs b) {
  return b == 0 ? 0.0 : static_cast<double>(a) / static_cast<double>(b);
}

}  // namespace vpim::bench
