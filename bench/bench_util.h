// Shared scaffolding for the figure-reproduction benches.
//
// Every bench builds a fresh simulated host with the paper's testbed
// geometry (8 ranks x 60 functional DPUs at 350 MHz, §5.1), runs the
// workload natively and/or under vPIM, and reports *virtual* time. Bench
// binaries use google-benchmark with manual time: the reported seconds are
// simulated seconds, not wall-clock.
//
// Set VPIM_BENCH_SCALE (e.g. 0.05) to shrink datasets for smoke runs; the
// default 1.0 reproduces the paper-scale shapes recorded in EXPERIMENTS.md.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "prim/app.h"
#include "prim/micro.h"
#include "sdk/native.h"
#include "vpim/guest_platform.h"
#include "vpim/host.h"
#include "vpim/vpim_vm.h"

namespace vpim::bench {

inline double env_scale() {
  if (const char* s = std::getenv("VPIM_BENCH_SCALE")) {
    const double v = std::atof(s);
    if (v > 0) return v;
  }
  return 1.0;
}

// VPIM_COST_PERTURB uniformly slows the cost model by the given factor:
// every fixed cost is multiplied by it and every bandwidth divided by it,
// so end-to-end simulated time drifts by roughly the same factor on any
// workload. CI uses it to self-test the perf-regression gate: a 1.01
// perturbation must trip the 0.5% drift check, and an unset (or 1.0)
// value must reproduce the committed baselines exactly.
inline CostModel bench_cost() {
  CostModel cost;
  if (const char* s = std::getenv("VPIM_COST_PERTURB")) {
    const double f = std::atof(s);
    if (f > 0) {
      auto slow = [f](SimNs& ns) {
        ns = static_cast<SimNs>(static_cast<double>(ns) * f);
      };
      auto throttle = [f](double& gbps) { gbps /= f; };
      slow(cost.ci_op_native_ns);
      slow(cost.ci_op_backend_ns);
      slow(cost.ioctl_ns);
      slow(cost.native_xfer_fixed_ns);
      slow(cost.vmexit_notify_ns);
      slow(cost.irq_inject_ns);
      slow(cost.frontend_request_fixed_ns);
      slow(cost.vhost_notify_ns);
      slow(cost.vhost_complete_ns);
      slow(cost.page_mgmt_ns_per_page);
      slow(cost.serialize_ns_per_page);
      slow(cost.per_dpu_metadata_ns);
      slow(cost.deserialize_ns_per_page);
      slow(cost.gpa_translate_ns_per_page);
      slow(cost.thread_dispatch_ns);
      slow(cost.backend_per_entry_ns);
      slow(cost.cache_hit_fixed_ns);
      slow(cost.manager_alloc_rt_ns);
      slow(cost.fault_retry_backoff_ns);
      slow(cost.rank_probe_ns);
      slow(cost.vm_boot_base_ns);
      slow(cost.vupmem_boot_ns);
      slow(cost.admission_check_ns);
      slow(cost.kv_cache_hit_ns);
      throttle(cost.mram_dma_gbps);
      throttle(cost.interleave_wide_gbps);
      throttle(cost.interleave_naive_gbps);
      throttle(cost.scattered_copy_gbps);
      throttle(cost.memset_gbps);
      throttle(cost.guest_memcpy_gbps);
      throttle(cost.emulated_copy_gbps);
      throttle(cost.rank_rescue_gbps);
      cost.dpu_hz /= f;
    }
  }
  return cost;
}

inline core::ManagerConfig bench_manager() {
  core::ManagerConfig cfg;
  cfg.retry_wait_ns = 10 * kMs;
  cfg.max_attempts = 3;
  return cfg;
}

// A fresh host per measurement keeps virtual clocks independent.
struct NativeRig {
  core::Host host{upmem::MachineConfig{}, bench_cost(), bench_manager()};
  sdk::NativePlatform platform{host.drv, "bench-native"};
};

struct VmRig {
  explicit VmRig(const core::VpimConfig& config,
                 std::uint32_t nr_devices = 8, std::uint32_t vcpus = 16,
                 std::uint64_t guest_ram = 2 * kGiB)
      : vm(host,
           {.name = "bench-vm",
            .vcpus = vcpus,
            .guest_ram_bytes = guest_ram},
           nr_devices, config),
        platform(vm) {}

  core::Host host{upmem::MachineConfig{}, bench_cost(), bench_manager()};
  core::VpimVm vm;
  core::GuestPlatform platform;
};

inline prim::AppResult run_prim_native(const std::string& app,
                                       const prim::AppParams& params) {
  NativeRig rig;
  return prim::make_app(app)->run(rig.platform, params);
}

inline prim::AppResult run_prim_vpim(const std::string& app,
                                     const prim::AppParams& params,
                                     const core::VpimConfig& config) {
  VmRig rig(config);
  return prim::make_app(app)->run(rig.platform, params);
}

// ---- small output helpers ------------------------------------------------

inline void print_header(const char* figure, const char* claim) {
  std::printf("\n============================================================"
              "====================\n");
  std::printf("%s\n", figure);
  std::printf("paper: %s\n", claim);
  std::printf("=============================================================="
              "==================\n");
}

inline double ratio(SimNs a, SimNs b) {
  return b == 0 ? 0.0 : static_cast<double>(a) / static_cast<double>(b);
}

// ---- wall-clock + machine-readable output --------------------------------
//
// Simulated time (the figures) is virtual and thread-count independent;
// wall-clock time is what the host-parallel engine actually speeds up. Each
// bench records both per figure point and dumps BENCH_<target>.json so CI
// can diff simulated results across VPIM_THREADS settings and trend the
// wall-clock numbers.

class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

struct BenchPoint {
  std::string name;        // figure point, e.g. "fig08/BS/dpus:480/vPIM"
  SimNs simulated_ns = 0;  // virtual time — must not depend on threads
  double wall_ms = 0.0;    // host wall-clock for the measured iteration
};

// Where BENCH_*.json (and other bench artifacts) land. Historically the
// benches wrote to whatever CWD they were launched from, which silently
// scattered results when CI ran them from the build tree; now the output
// directory is pinned at configure time (the repo root) and can be
// redirected per run with VPIM_BENCH_OUT.
inline std::string bench_out_dir() {
  if (const char* s = std::getenv("VPIM_BENCH_OUT")) {
    if (*s != '\0') return s;
  }
#ifdef VPIM_BENCH_DEFAULT_OUT
  return VPIM_BENCH_DEFAULT_OUT;
#else
  return ".";
#endif
}

inline std::string bench_out_path(const std::string& filename) {
  std::string dir = bench_out_dir();
  if (!dir.empty() && dir.back() != '/') dir += '/';
  return dir + filename;
}

inline void write_bench_json(const std::string& target,
                             std::span<const BenchPoint> points) {
  const std::string path = bench_out_path("BENCH_" + target + ".json");
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"target\": \"%s\",\n  \"threads\": %u,\n",
               target.c_str(), ThreadPool::instance().size());
  std::fprintf(f, "  \"points\": [\n");
  for (std::size_t i = 0; i < points.size(); ++i) {
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"simulated_ns\": %llu, "
                 "\"wall_ms\": %.3f}%s\n",
                 points[i].name.c_str(),
                 static_cast<unsigned long long>(points[i].simulated_ns),
                 points[i].wall_ms, i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s (%zu points, %u host threads)\n", path.c_str(),
              points.size(), ThreadPool::instance().size());
}

}  // namespace vpim::bench
