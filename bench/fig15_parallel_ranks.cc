// Fig 15: parallel operation handling on multiple ranks (checksum).
// Paper: ~1.13x average whole-application speedup (growing with ranks),
// ~1.4x on the write-to-rank operation.
#include <benchmark/benchmark.h>

#include <map>

#include "bench/bench_util.h"

namespace vpim::bench {
namespace {

struct Cell {
  SimNs seq_total = 0, par_total = 0;
  SimNs seq_write = 0, par_write = 0;
};
std::map<std::uint32_t, Cell> g_cells;

void run_cell(benchmark::State& state, std::uint32_t ranks, bool parallel) {
  prim::ChecksumParams prm;
  prm.nr_dpus = ranks * 60;
  prm.file_bytes = static_cast<std::uint64_t>(
      static_cast<double>(20 * kMiB) * env_scale());
  for (auto _ : state) {
    VmRig rig(parallel ? core::VpimConfig::full()
                       : core::VpimConfig::sequential(),
              ranks);
    const auto res = prim::run_checksum(rig.platform, prm);
    // Whole-app time plus the write-to-rank time summed over devices
    // (Fig 15b looks at the broadcast write specifically).
    // Wall time of the write op = the slowest device's completion; the
    // guest submits to every rank concurrently, so the sequential event
    // loop gives later ranks long queueing delays (Fig 16).
    SimNs write_time = 0;
    for (std::uint32_t i = 0; i < rig.vm.nr_devices(); ++i) {
      write_time = std::max(write_time,
                            rig.vm.device(i).stats.ops.time(
                                RankOp::kWriteToRank));
    }
    state.SetIterationTime(ns_to_s(res.total));
    state.counters["correct"] = res.correct ? 1 : 0;
    Cell& cell = g_cells[ranks];
    (parallel ? cell.par_total : cell.seq_total) = res.total;
    (parallel ? cell.par_write : cell.seq_write) = write_time;
  }
}

void print_summary() {
  print_header("Fig 15 - parallel operation handling on multiple ranks",
               "whole-app speedup ~1.13x avg (grows with ranks); "
               "write-to-rank speedup ~1.4x");
  std::printf("%6s | %10s %10s %8s | %10s %10s %8s\n", "#ranks",
              "seq app", "par app", "speedup", "seq W-rank", "par W-rank",
              "speedup");
  for (const auto& [ranks, cell] : g_cells) {
    std::printf("%6u | %8.1fms %8.1fms %7.2fx | %8.1fms %8.1fms %7.2fx\n",
                ranks, ns_to_ms(cell.seq_total), ns_to_ms(cell.par_total),
                ratio(cell.seq_total, cell.par_total),
                ns_to_ms(cell.seq_write), ns_to_ms(cell.par_write),
                ratio(cell.seq_write, cell.par_write));
  }
}

}  // namespace
}  // namespace vpim::bench

int main(int argc, char** argv) {
  using namespace vpim::bench;
  benchmark::Initialize(&argc, argv);
  for (std::uint32_t ranks : {2u, 4u, 8u}) {
    for (const bool parallel : {false, true}) {
      const std::string name = "fig15/ranks:" + std::to_string(ranks) +
                               (parallel ? "/vPIM" : "/vPIM-Seq");
      benchmark::RegisterBenchmark(
          name.c_str(),
          [ranks, parallel](benchmark::State& state) {
            run_cell(state, ranks, parallel);
          })
          ->UseManualTime()
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
  benchmark::RunSpecifiedBenchmarks();
  print_summary();
  benchmark::Shutdown();
  return 0;
}
