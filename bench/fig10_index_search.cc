// Fig 10: Wikipedia Index Search execution time vs #DPUs (1..128).
// Both systems slow down as DPUs grow (more transfer work); the relative
// overhead shrinks (paper: 2.1x @1 DPU -> 1.3x @128 DPUs).
#include <benchmark/benchmark.h>

#include <map>

#include "bench/bench_util.h"

namespace vpim::bench {
namespace {

struct Cell {
  SimNs native = 0;
  SimNs vpim = 0;
};
std::map<std::uint32_t, Cell> g_cells;

prim::IndexSearchParams params_for(std::uint32_t dpus) {
  prim::IndexSearchParams prm;
  prm.nr_dpus = dpus;
  const double scale = env_scale();
  prm.nr_documents = std::max<std::uint32_t>(
      32, static_cast<std::uint32_t>(4305 * scale));
  prm.avg_doc_words = std::max<std::uint32_t>(
      50, static_cast<std::uint32_t>(1900 * (scale < 1 ? 1.0 : 1.0)));
  return prm;
}

void run_cell(benchmark::State& state, std::uint32_t dpus,
              bool virtualized) {
  const auto prm = params_for(dpus);
  for (auto _ : state) {
    prim::IndexSearchResult res;
    if (virtualized) {
      VmRig rig(core::VpimConfig::full(), (dpus + 59) / 60);
      res = prim::run_index_search(rig.platform, prm);
    } else {
      NativeRig rig;
      res = prim::run_index_search(rig.platform, prm);
    }
    state.SetIterationTime(ns_to_s(res.total));
    state.counters["correct"] = res.correct ? 1 : 0;
    state.counters["index_MB"] =
        static_cast<double>(res.index_bytes) / (1 << 20);
    Cell& cell = g_cells[dpus];
    (virtualized ? cell.vpim : cell.native) = res.total;
  }
}

void print_summary() {
  print_header("Fig 10 - Index Search vs #DPUs",
               "time grows with #DPUs for both; overhead 2.1x @1 DPU "
               "-> 1.3x @128 DPUs; 63MB index, 445 queries in 4x128 "
               "batches");
  std::printf("%6s | %10s | %10s | %8s\n", "#DPUs", "native", "vPIM",
              "overhead");
  for (const auto& [dpus, cell] : g_cells) {
    std::printf("%6u | %8.1fms | %8.1fms | %7.2fx\n", dpus,
                ns_to_ms(cell.native), ns_to_ms(cell.vpim),
                ratio(cell.vpim, cell.native));
  }
}

}  // namespace
}  // namespace vpim::bench

int main(int argc, char** argv) {
  using namespace vpim::bench;
  benchmark::Initialize(&argc, argv);
  for (std::uint32_t dpus : {1u, 8u, 16u, 60u, 128u}) {
    for (const bool virtualized : {false, true}) {
      const std::string name = "fig10/dpus:" + std::to_string(dpus) +
                               (virtualized ? "/vPIM" : "/native");
      benchmark::RegisterBenchmark(
          name.c_str(),
          [dpus, virtualized](benchmark::State& state) {
            run_cell(state, dpus, virtualized);
          })
          ->UseManualTime()
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
  benchmark::RunSpecifiedBenchmarks();
  print_summary();
  benchmark::Shutdown();
  return 0;
}
