// §7 (future work): "a VMM module similar to the UPMEM simulator could
// support oversubscription by running applications at reduced
// performance." Quantifies that trade-off: N tenants each want one rank
// of a machine that has 8. Without oversubscription, tenants beyond
// capacity fail; with it, they run on emulated ranks and finish slower.
#include <benchmark/benchmark.h>

#include <cstring>
#include <map>

#include "common/rng.h"

#include "bench/bench_util.h"

namespace vpim::bench {
namespace {

struct Cell {
  std::uint32_t completed = 0;
  std::uint32_t failed = 0;
  std::uint32_t emulated = 0;
  SimNs physical_time = 0;  // representative per-tenant times
  SimNs emulated_time = 0;
};
std::map<std::pair<std::uint32_t, bool>, Cell> g_cells;

// The tenant workload, driven through an already-bound device so every
// tenant holds its rank for the whole experiment (true contention).
SimNs run_tenant(core::Host& host, core::VpimVm& vm,
                 std::uint64_t file_bytes) {
  prim::register_micro_kernels();
  core::Frontend& fe = vm.device(0).frontend;
  auto file = vm.vmm().memory().alloc(file_bytes);
  Rng rng(7);
  rng.fill_bytes(file.data(), file.size());

  const SimNs t0 = host.clock.now();
  fe.ci_load("micro_checksum");
  driver::TransferMatrix w;
  for (std::uint32_t d = 0; d < fe.nr_dpus(); ++d) {
    w.entries.push_back({d, 0, file.data(), file_bytes});
  }
  fe.write_to_rank(w);
  struct CkArgs {
    std::uint64_t n_bytes, in_off, res_off;
  } args{file_bytes, 0, (file_bytes + 7) / 8 * 8};
  auto packed = vm.vmm().memory().alloc(std::uint64_t{fe.nr_dpus()} *
                                        sizeof(CkArgs));
  for (std::uint32_t d = 0; d < fe.nr_dpus(); ++d) {
    std::memcpy(packed.data() + d * sizeof(CkArgs), &args, sizeof(CkArgs));
  }
  fe.ci_push_symbols(driver::XferDirection::kToRank, "ck_args", 0, packed,
                     sizeof(CkArgs));
  fe.ci_launch(fe.nr_dpus() == 64 ? ~0ULL : ((1ULL << fe.nr_dpus()) - 1),
               16);
  while (fe.ci_running_mask() != 0) host.clock.advance(100 * kUs);
  auto out = vm.vmm().memory().alloc(8);
  driver::TransferMatrix r;
  r.direction = driver::XferDirection::kFromRank;
  r.entries.push_back({0, args.res_off, out.data(), 8});
  fe.read_from_rank(r);
  return host.clock.now() - t0;
}

void run_cell(benchmark::State& state, std::uint32_t tenants,
              bool oversubscribe) {
  const auto file_bytes = static_cast<std::uint64_t>(
      static_cast<double>(8 * kMiB) * env_scale());
  for (auto _ : state) {
    core::Host host(upmem::MachineConfig{}, CostModel{}, bench_manager());
    core::VpimConfig config = core::VpimConfig::full();
    config.oversubscribe = oversubscribe;

    Cell cell;
    std::vector<std::unique_ptr<core::VpimVm>> vms;
    // Bind phase: every tenant claims its device up front and holds it.
    for (std::uint32_t t = 0; t < tenants; ++t) {
      vms.push_back(std::make_unique<core::VpimVm>(
          host, vmm::VmmParams{.name = "tenant" + std::to_string(t)}, 1,
          config));
      if (!vms.back()->device(0).frontend.open()) ++cell.failed;
    }
    // Run phase.
    const SimNs run_start = host.clock.now();
    for (std::uint32_t t = 0; t < tenants; ++t) {
      core::VpimVm& vm = *vms[t];
      if (!vm.device(0).frontend.is_open()) continue;
      const SimNs took = run_tenant(host, vm, file_bytes);
      ++cell.completed;
      if (vm.device(0).backend.emulated()) {
        ++cell.emulated;
        cell.emulated_time = took;
      } else {
        cell.physical_time = took;
      }
    }
    g_cells[{tenants, oversubscribe}] = cell;
    state.SetIterationTime(ns_to_s(host.clock.now() - run_start));
    state.counters["completed"] = cell.completed;
    state.counters["failed"] = cell.failed;
    state.counters["emulated"] = cell.emulated;
  }
}

// Manager-level slot oversubscription (ISSUE 9): the third arm beyond
// strict/emulated. Tenants share ranks at wrank-slot granularity; churn
// scatters the slots and a consolidation pass packs them back, so the
// counters show how much capacity fragmentation was holding hostage.
struct SlotCell {
  std::uint32_t frag_before = 0;
  std::uint32_t frag_after = 0;
  std::uint32_t migrations = 0;
};
SlotCell g_slot_cell;

void run_slot_cell(benchmark::State& state) {
  for (auto _ : state) {
    core::ManagerConfig mcfg = bench_manager();
    mcfg.wrank_slots_per_rank = 4;
    mcfg.placement = core::PlacementPolicyKind::kConsolidating;
    core::Host host(upmem::MachineConfig{}, CostModel{}, mcfg);
    const SimNs t0 = host.clock.now();
    std::vector<std::uint64_t> ids;
    for (std::uint32_t t = 0; t < 16; ++t) {
      const auto r = host.manager.allocate_wrank(
          "slot-tenant" + std::to_string(t % 4), 2);
      if (r.status == core::AllocStatus::kOk) ids.push_back(r.wrank);
    }
    // Release every other tenant: occupancy halves but the survivors sit
    // one per rank, pinning every rank in hosting state.
    for (std::size_t i = 0; i < ids.size(); i += 2) {
      host.manager.release_wrank(ids[i]);
    }
    SlotCell cell;
    cell.frag_before = host.manager.fragmentation_permille();
    cell.migrations = host.manager.consolidate();
    cell.frag_after = host.manager.fragmentation_permille();
    g_slot_cell = cell;
    state.SetIterationTime(ns_to_s(host.clock.now() - t0));
    state.counters["frag_before"] = cell.frag_before;
    state.counters["frag_after"] = cell.frag_after;
    state.counters["migrations"] = cell.migrations;
  }
}

void print_summary() {
  print_header("Oversubscription consolidation (§7 future work)",
               "beyond 8 physical ranks, tenants either fail (strict) or "
               "run on emulated ranks at reduced performance");
  std::printf("%8s %10s | %9s %6s %8s | %12s %12s\n", "tenants", "mode",
              "completed", "failed", "emulated", "phys tenant",
              "emu tenant");
  for (const auto& [key, cell] : g_cells) {
    std::printf("%8u %10s | %9u %6u %8u | %10.1fms %10.1fms\n", key.first,
                key.second ? "oversub" : "strict", cell.completed,
                cell.failed, cell.emulated, ns_to_ms(cell.physical_time),
                ns_to_ms(cell.emulated_time));
  }
  std::printf(
      "slot-granular arm: fragmentation %u -> %u permille after %u live "
      "migrations (see fig_manager_policies for the policy ablation)\n",
      g_slot_cell.frag_before, g_slot_cell.frag_after,
      g_slot_cell.migrations);
}

}  // namespace
}  // namespace vpim::bench

int main(int argc, char** argv) {
  using namespace vpim::bench;
  benchmark::Initialize(&argc, argv);
  for (std::uint32_t tenants : {8u, 12u, 16u}) {
    for (const bool oversubscribe : {false, true}) {
      const std::string name =
          "oversub/tenants:" + std::to_string(tenants) +
          (oversubscribe ? "/oversub" : "/strict");
      benchmark::RegisterBenchmark(
          name.c_str(),
          [tenants, oversubscribe](benchmark::State& state) {
            run_cell(state, tenants, oversubscribe);
          })
          ->UseManualTime()
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
  benchmark::RegisterBenchmark("oversub/slots+consolidation", run_slot_cell)
      ->UseManualTime()
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
  benchmark::RunSpecifiedBenchmarks();
  print_summary();
  benchmark::Shutdown();
  return 0;
}
