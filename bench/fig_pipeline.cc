// Pipeline depth sweep (ISSUE 7): the async SQ/CQ path amortizes doorbell
// VMEXITs and completion IRQs over a whole submission batch, and the
// backend replays a batch's host<->MRAM copies in one thread fan-out.
//
// Two lanes, each swept over queue depth 1 -> 32:
//   - checksum-style raw transfers driven through the frontend's async API
//     (submit_write/submit_read/poll_completions) with distinct per-request
//     guest buffers — the pipelining best case;
//   - NW through the unmodified blocking SDK, where only posted batch
//     flushes ride along with the next operation's doorbell.
//
// Emits BENCH_pipeline.json with a vmexits_per_op column next to the
// standard simulated_ns/wall_ms pair, and fails (exit 1) if modeled
// vmexits/op on the async lane is not strictly decreasing with depth.
#include <benchmark/benchmark.h>

#include <array>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace vpim::bench {
namespace {

constexpr std::array<std::uint32_t, 6> kDepths = {1, 2, 4, 8, 16, 32};

struct Row {
  std::string name;
  SimNs simulated_ns = 0;
  double wall_ms = 0.0;
  double vmexits_per_op = 0.0;
  bool checksum_lane = false;
};
std::vector<Row> g_rows;  // registration order = depth order per lane

core::VpimConfig depth_config(std::uint32_t depth) {
  core::VpimConfig config = core::VpimConfig::full();
  config.queue_depth = depth;
  return config;
}

// Raw-transfer lane: one write pass and one read pass of `requests()`
// small matrices, each request on its own guest buffer (the async API's
// buffer-stability contract), verified after the read pass. Requests stay
// narrow (4 DPUs, ~11 descriptors) so depth 32 fits the 512-slot transfer
// ring; request count dominates, which is the latency-bound shape the
// pipeline is for.
std::uint32_t requests() {
  const double scaled = 512.0 * env_scale();
  return scaled < 256.0 ? 256 : static_cast<std::uint32_t>(scaled);
}
constexpr std::uint32_t kDpusPerRequest = 4;
constexpr std::uint64_t kPerDpuBytes = 256;

void run_checksum_depth(benchmark::State& state, std::uint32_t depth) {
  for (auto _ : state) {
    VmRig rig(depth_config(depth), /*nr_devices=*/1);
    core::VupmemDevice& dev = rig.vm.device(0);
    core::Frontend& fe = dev.frontend;
    if (!fe.open()) {
      state.SkipWithError("no rank available");
      return;
    }
    const std::uint32_t nr_dpus = fe.nr_dpus();
    const std::uint32_t nr_requests = requests();
    const std::uint64_t req_bytes = kPerDpuBytes * kDpusPerRequest;
    std::vector<std::span<std::uint8_t>> wbufs(nr_requests);
    std::vector<std::span<std::uint8_t>> rbufs(nr_requests);
    for (std::uint32_t r = 0; r < nr_requests; ++r) {
      wbufs[r] = rig.vm.vmm().memory().alloc(req_bytes);
      rbufs[r] = rig.vm.vmm().memory().alloc(req_bytes);
      for (std::uint64_t i = 0; i < req_bytes; ++i) {
        wbufs[r][i] = static_cast<std::uint8_t>(r * 131 + i * 7);
      }
    }
    auto matrix_for = [&](std::uint32_t r, std::span<std::uint8_t> buf,
                          driver::XferDirection dir) {
      driver::TransferMatrix m;
      m.direction = dir;
      for (std::uint32_t d = 0; d < kDpusPerRequest; ++d) {
        // Entries stripe round-robin over the rank; the linear entry index
        // makes every (request, entry) pair own a disjoint MRAM window, so
        // each read verifies against exactly its own write.
        const std::uint32_t linear = r * kDpusPerRequest + d;
        m.entries.push_back({linear % nr_dpus,
                             (linear / nr_dpus) * kPerDpuBytes,
                             buf.data() + std::uint64_t{d} * kPerDpuBytes,
                             kPerDpuBytes});
      }
      return m;
    };

    // Matrices are prepared up front: the timed region is submission,
    // device handling, and completion reaping only.
    std::vector<driver::TransferMatrix> wmats(nr_requests);
    std::vector<driver::TransferMatrix> rmats(nr_requests);
    for (std::uint32_t r = 0; r < nr_requests; ++r) {
      wmats[r] = matrix_for(r, wbufs[r], driver::XferDirection::kToRank);
      rmats[r] = matrix_for(r, rbufs[r], driver::XferDirection::kFromRank);
    }

    std::uint64_t failures = 0;
    auto drain = [&](std::uint32_t expect) {
      std::uint32_t reaped = 0;
      while (reaped < expect) {
        const auto batch = fe.poll_completions();
        for (const core::Frontend::Completion& c : batch) {
          if (c.status != 0) ++failures;
        }
        reaped += static_cast<std::uint32_t>(batch.size());
        if (batch.empty()) break;  // nothing in flight: avoid spinning
      }
      return reaped;
    };
    // Untimed warmup pass: first-touch faults on the guest buffers, arena
    // and ring growth, and pool-worker spin-up are one-time costs shared
    // by every depth; the timed region below measures the steady state
    // where the per-batch doorbell/IRQ amortization is the variable.
    for (std::uint32_t r = 0; r < nr_requests; ++r) {
      fe.submit_write(wmats[r]);
    }
    std::uint32_t done = drain(nr_requests);
    if (done != nr_requests) {
      state.SkipWithError("warmup pass lost completions");
      return;
    }
    done = 0;

    const core::DeviceStats before = dev.stats;
    const SimNs sim_start = rig.host.clock.now();
    WallTimer timer;
    for (std::uint32_t r = 0; r < nr_requests; ++r) {
      fe.submit_write(wmats[r]);
    }
    done += drain(nr_requests);
    for (std::uint32_t r = 0; r < nr_requests; ++r) {
      fe.submit_read(rmats[r]);
    }
    done += drain(nr_requests);
    const double wall = timer.elapsed_ms();
    const SimNs simulated = rig.host.clock.now() - sim_start;

    bool correct = done == 2 * nr_requests && failures == 0;
    for (std::uint32_t r = 0; correct && r < nr_requests; ++r) {
      correct =
          std::memcmp(rbufs[r].data(), wbufs[r].data(), req_bytes) == 0;
    }
    fe.close();

    const std::uint64_t doorbells = dev.stats.doorbells - before.doorbells;
    const double per_op =
        static_cast<double>(doorbells) / (2.0 * nr_requests);
    state.SetIterationTime(ns_to_s(simulated));
    state.counters["correct"] = correct ? 1 : 0;
    state.counters["doorbells"] = static_cast<double>(doorbells);
    state.counters["vmexits_per_op"] = per_op;
    g_rows.push_back({"pipeline/checksum/depth:" + std::to_string(depth),
                      simulated, wall, per_op, true});
  }
}

// Blocking-SDK lane: same NW shape as Fig 14's +PB row. Only posted batch
// flushes coalesce here, so the win saturates immediately past depth 1.
prim::AppParams nw_params() {
  prim::AppParams prm;
  prm.nr_dpus = 60;
  prm.scale = env_scale();
  prm.xfer_grain = 0.25;
  return prm;
}

void run_nw_depth(benchmark::State& state, std::uint32_t depth) {
  for (auto _ : state) {
    VmRig rig(depth_config(depth), /*nr_devices=*/1);
    WallTimer timer;
    const auto res = prim::make_app("NW")->run(rig.platform, nw_params());
    const double wall = timer.elapsed_ms();
    const core::DeviceStats& stats = rig.vm.device(0).stats;
    const std::uint64_t messages =
        stats.notifies + stats.coalesced_notifies;
    const double per_op =
        messages == 0 ? 0.0
                      : static_cast<double>(stats.doorbells) /
                            static_cast<double>(messages);
    state.SetIterationTime(ns_to_s(res.total()));
    state.counters["correct"] = res.correct ? 1 : 0;
    state.counters["vmexits_per_op"] = per_op;
    g_rows.push_back({"pipeline/NW/depth:" + std::to_string(depth),
                      res.total(), wall, per_op, false});
  }
}

void write_pipeline_json() {
  const std::string path = bench_out_path("BENCH_pipeline.json");
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"target\": \"pipeline\",\n  \"threads\": %u,\n",
               ThreadPool::instance().size());
  std::fprintf(f, "  \"points\": [\n");
  for (std::size_t i = 0; i < g_rows.size(); ++i) {
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"simulated_ns\": %llu, "
                 "\"wall_ms\": %.3f, \"vmexits_per_op\": %.4f}%s\n",
                 g_rows[i].name.c_str(),
                 static_cast<unsigned long long>(g_rows[i].simulated_ns),
                 g_rows[i].wall_ms, g_rows[i].vmexits_per_op,
                 i + 1 < g_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s (%zu points, %u host threads)\n", path.c_str(),
              g_rows.size(), ThreadPool::instance().size());
}

// Returns false if the async lane's vmexits/op does not strictly decrease
// as depth grows — the tentpole's core modeled claim.
bool print_summary() {
  print_header(
      "Pipeline - SQ/CQ depth sweep (single rank)",
      "N staged submissions cost one doorbell VMEXIT and one completion "
      "IRQ; modeled vmexits/op shrinks ~1/depth on the async path");
  std::printf("%-28s | %12s | %10s | %12s\n", "point", "simulated",
              "wall", "vmexits/op");
  for (const Row& row : g_rows) {
    std::printf("%-28s | %10.2fms | %8.2fms | %12.4f\n", row.name.c_str(),
                ns_to_ms(row.simulated_ns), row.wall_ms,
                row.vmexits_per_op);
  }
  const Row* d1 = nullptr;
  const Row* d8 = nullptr;
  bool monotonic = true;
  const Row* prev = nullptr;
  for (const Row& row : g_rows) {
    if (!row.checksum_lane) continue;
    if (prev != nullptr && row.vmexits_per_op >= prev->vmexits_per_op) {
      monotonic = false;
    }
    if (row.name.ends_with("depth:1")) d1 = &row;
    if (row.name.ends_with("depth:8")) d8 = &row;
    prev = &row;
  }
  if (d1 != nullptr && d8 != nullptr && d8->wall_ms > 0) {
    std::printf("checksum wall speedup depth 8 vs 1: %.2fx\n",
                d1->wall_ms / d8->wall_ms);
  }
  if (!monotonic) {
    std::fprintf(stderr,
                 "FAIL: async-lane vmexits/op is not strictly decreasing "
                 "with depth\n");
  }
  return monotonic;
}

}  // namespace
}  // namespace vpim::bench

int main(int argc, char** argv) {
  using namespace vpim::bench;
  benchmark::Initialize(&argc, argv);
  for (std::uint32_t depth : kDepths) {
    const std::string name =
        "pipeline/checksum/depth:" + std::to_string(depth);
    benchmark::RegisterBenchmark(name.c_str(),
                                 [depth](benchmark::State& state) {
                                   run_checksum_depth(state, depth);
                                 })
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  for (std::uint32_t depth : kDepths) {
    const std::string name = "pipeline/NW/depth:" + std::to_string(depth);
    benchmark::RegisterBenchmark(name.c_str(),
                                 [depth](benchmark::State& state) {
                                   run_nw_depth(state, depth);
                                 })
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::RunSpecifiedBenchmarks();
  const bool ok = print_summary();
  write_pipeline_json();
  benchmark::Shutdown();
  return ok ? 0 : 1;
}
