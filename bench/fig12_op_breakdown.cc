// Fig 12: driver-centric breakdown of checksum execution into control-
// interface (CI), read-from-rank (R-rank) and write-to-rank (W-rank)
// operation time, inside the guest driver + Firecracker, for vPIM-rust vs
// vPIM(-C). 60 DPUs, 16 vCPUs, 8 MB file. Paper: W-rank dominates and is
// the step the C rewrite shrinks; CI and R-rank are similar across both.
#include <benchmark/benchmark.h>

#include <fstream>
#include <map>

#include "bench/bench_util.h"
#include "common/obs/chrome_trace.h"
#include "common/obs/trace.h"

namespace vpim::bench {
namespace {

std::map<std::string, core::DeviceStats> g_stats;
std::vector<BenchPoint> g_points;

void run_system(benchmark::State& state, const std::string& label,
                const core::VpimConfig& config) {
  prim::ChecksumParams prm;
  prm.nr_dpus = 60;
  prm.file_bytes = static_cast<std::uint64_t>(
      static_cast<double>(8 * kMiB) * env_scale());
  for (auto _ : state) {
    WallTimer wall;
    VmRig rig(config, 1);
    obs::Tracer tracer;
    rig.host.attach_tracer(&tracer);
    prim::run_checksum(rig.platform, prm);
    const double wall_ms = wall.elapsed_ms();
    const core::DeviceStats& stats = rig.vm.device(0).stats;
    g_stats[label] = stats;

    // The figure is readable straight off the span stream: root-span
    // category totals must equal the DeviceStats breakdown to the ns.
    struct Check {
      obs::Category cat;
      RankOp op;
    };
    bool mismatch = false;
    for (const Check c : {Check{obs::Category::kCi, RankOp::kCi},
                          Check{obs::Category::kRead, RankOp::kReadFromRank},
                          Check{obs::Category::kWrite, RankOp::kWriteToRank}}) {
      const SimNs spans = tracer.total_for(c.cat);
      const SimNs ops = stats.ops.time(c.op);
      if (spans != ops) {
        mismatch = true;
        std::fprintf(
            stderr,
            "fig12/%s: %s spans %llu ns != stats %llu ns (delta %+lld ns)\n",
            label.c_str(),
            obs::kCategoryNames[static_cast<int>(c.cat)].data(),
            static_cast<unsigned long long>(spans),
            static_cast<unsigned long long>(ops),
            static_cast<long long>(spans) - static_cast<long long>(ops));
      }
    }
    if (mismatch) {
      std::fprintf(stderr,
                   "fig12/%s: span stream disagrees with DeviceStats; see "
                   "per-category deltas above\n",
                   label.c_str());
      std::exit(1);
    }
    {
      const std::string path =
          bench_out_path("BENCH_fig12_" + label + ".trace.json");
      std::ofstream out(path);
      obs::export_chrome_trace(tracer, out);
      std::printf("chrome trace: %zu spans -> %s\n", tracer.spans().size(),
                  path.c_str());
    }
    const SimNs total = stats.ops.time(RankOp::kCi) +
                        stats.ops.time(RankOp::kReadFromRank) +
                        stats.ops.time(RankOp::kWriteToRank);
    state.SetIterationTime(ns_to_s(total));
    state.counters["CI_ms"] = ns_to_ms(stats.ops.time(RankOp::kCi));
    state.counters["Rrank_ms"] =
        ns_to_ms(stats.ops.time(RankOp::kReadFromRank));
    state.counters["Wrank_ms"] =
        ns_to_ms(stats.ops.time(RankOp::kWriteToRank));
    state.counters["wall_ms"] = wall_ms;
    g_points.push_back({"fig12/" + label, total, wall_ms});
  }
}

void print_summary() {
  print_header("Fig 12 - driver-centric op breakdown (checksum, 8 MB)",
               "W-rank dominates and shrinks with the C data path; CI and "
               "R-rank stay roughly constant across implementations");
  std::printf("%-10s | %12s %5s | %12s %5s | %12s %5s\n", "system",
              "CI", "#", "R-rank", "#", "W-rank", "#");
  for (const auto& [label, stats] : g_stats) {
    std::printf(
        "%-10s | %10.2fms %5lu | %10.2fms %5lu | %10.2fms %5lu\n",
        label.c_str(), ns_to_ms(stats.ops.time(RankOp::kCi)),
        static_cast<unsigned long>(stats.ops.count(RankOp::kCi)),
        ns_to_ms(stats.ops.time(RankOp::kReadFromRank)),
        static_cast<unsigned long>(stats.ops.count(RankOp::kReadFromRank)),
        ns_to_ms(stats.ops.time(RankOp::kWriteToRank)),
        static_cast<unsigned long>(
            stats.ops.count(RankOp::kWriteToRank)));
  }
}

}  // namespace
}  // namespace vpim::bench

int main(int argc, char** argv) {
  using namespace vpim::bench;
  benchmark::Initialize(&argc, argv);
  benchmark::RegisterBenchmark("fig12/vPIM-rust",
                               [](benchmark::State& state) {
                                 run_system(state, "vPIM-rust",
                                            vpim::core::VpimConfig::rust());
                               })
      ->UseManualTime()
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("fig12/vPIM-C",
                               [](benchmark::State& state) {
                                 run_system(state, "vPIM-C",
                                            vpim::core::VpimConfig::c_only());
                               })
      ->UseManualTime()
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
  benchmark::RunSpecifiedBenchmarks();
  print_summary();
  write_bench_json("fig12", g_points);
  benchmark::Shutdown();
  return 0;
}
