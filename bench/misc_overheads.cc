// Miscellaneous overheads the paper reports outside its figures:
//  - §3.2: a vUPMEM device adds up to 2 ms to VM boot time;
//  - §4.1: frontend memory overhead <= 1.37 MB per DPU;
//  - §4.2: manager allocation round trip ~36 ms; rank reset ~597 ms.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace vpim::bench {
namespace {

SimNs g_boot_plain = 0, g_boot_device = 0;
double g_frontend_mb_per_dpu = 0;
SimNs g_alloc = 0, g_reset = 0;

void bench_boot(benchmark::State& state) {
  for (auto _ : state) {
    core::Host host;
    core::VpimVm plain(host, {.name = "plain"}, 0);
    core::VpimVm with(host, {.name = "with"}, 1);
    g_boot_plain = plain.boot_duration();
    g_boot_device = with.boot_duration();
    state.SetIterationTime(ns_to_s(g_boot_device));
    state.counters["extra_ms"] = ns_to_ms(g_boot_device - g_boot_plain);
  }
}

void bench_frontend_memory(benchmark::State& state) {
  for (auto _ : state) {
    VmRig rig(core::VpimConfig::full(), 1);
    VPIM_CHECK(rig.vm.device(0).frontend.open(), "bind failed");
    const double per_dpu =
        static_cast<double>(
            rig.vm.device(0).frontend.memory_overhead_bytes()) /
        64.0 / (1024.0 * 1024.0);
    g_frontend_mb_per_dpu = per_dpu;
    state.SetIterationTime(1e-9);
    state.counters["MB_per_DPU"] = per_dpu;
  }
}

void bench_manager_alloc(benchmark::State& state) {
  for (auto _ : state) {
    core::Host host;
    const SimNs t0 = host.clock.now();
    auto rank = host.manager.request_rank("bench-vm");
    VPIM_CHECK(rank.has_value(), "allocation failed");
    g_alloc = host.clock.now() - t0;
    state.SetIterationTime(ns_to_s(g_alloc));
  }
}

void bench_rank_reset(benchmark::State& state) {
  for (auto _ : state) {
    core::Host host;
    auto rank = host.manager.request_rank("bench-vm");
    VPIM_CHECK(rank.has_value(), "allocation failed");
    {
      auto mapping = host.drv.map_rank(*rank, "bench-vm");
      host.manager.observe();
    }
    host.manager.observe(/*do_resets=*/false);
    const SimNs t0 = host.clock.now();
    host.manager.observe(/*do_resets=*/true);  // performs the erase
    g_reset = host.clock.now() - t0;
    state.SetIterationTime(ns_to_s(g_reset));
  }
}

void print_summary() {
  print_header("Misc overheads (boot / frontend memory / manager)",
               "boot +2 ms per device; frontend <= 1.37 MB per DPU; "
               "manager allocation ~36 ms; rank reset ~597 ms");
  std::printf("vUPMEM boot overhead : %8.2f ms   (paper: up to 2 ms)\n",
              ns_to_ms(g_boot_device - g_boot_plain));
  std::printf("frontend memory      : %8.2f MB/DPU (paper bound: 1.37 "
              "MB/DPU)\n",
              g_frontend_mb_per_dpu);
  std::printf("manager allocation   : %8.2f ms   (paper: ~36 ms)\n",
              ns_to_ms(g_alloc));
  std::printf("rank reset           : %8.2f ms   (paper: ~597 ms)\n",
              ns_to_ms(g_reset));
}

}  // namespace
}  // namespace vpim::bench

int main(int argc, char** argv) {
  using namespace vpim::bench;
  benchmark::Initialize(&argc, argv);
  benchmark::RegisterBenchmark("misc/vm_boot", bench_boot)
      ->UseManualTime()
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("misc/frontend_memory",
                               bench_frontend_memory)
      ->UseManualTime()
      ->Iterations(1);
  benchmark::RegisterBenchmark("misc/manager_alloc", bench_manager_alloc)
      ->UseManualTime()
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("misc/rank_reset", bench_rank_reset)
      ->UseManualTime()
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
  benchmark::RunSpecifiedBenchmarks();
  print_summary();
  benchmark::Shutdown();
  return 0;
}
