// Fault-recovery overhead (ISSUE 3): the checksum program runs clean, then
// under a seeded FaultPlan with (a) transient DPU/ECC faults that the
// backend retries in place and (b) a permanent rank death that forces a
// transparent wrank migration (full-rank MRAM rescue at rank_rescue_gbps).
// Reported numbers are simulated ns; the "overhead" points are the delta
// each fault scenario adds over the clean run of the same workload.
#include <benchmark/benchmark.h>

#include <map>

#include "bench/bench_util.h"
#include "common/fault.h"

namespace vpim::bench {
namespace {

struct ScenarioResult {
  SimNs total = 0;
  std::uint64_t retries = 0;
  std::uint64_t migrations = 0;
  std::size_t fired = 0;
};

std::map<std::string, ScenarioResult> g_results;
std::vector<BenchPoint> g_points;

void run_scenario(benchmark::State& state, const std::string& label,
                  const FaultPlanConfig* fault_cfg) {
  prim::ChecksumParams prm;
  prm.nr_dpus = 60;
  prm.file_bytes = static_cast<std::uint64_t>(
      static_cast<double>(8 * kMiB) * env_scale());
  for (auto _ : state) {
    WallTimer wall;
    VmRig rig(vpim::core::VpimConfig::full(), 1);
    if (fault_cfg != nullptr) {
      // nr_ranks=1 aims every event at rank 0, the rank the single device
      // binds, so the schedule deterministically fires inside the run.
      rig.host.install_fault_plan(
          FaultPlan::generate(*fault_cfg, /*nr_ranks=*/1));
    }
    prim::run_checksum(rig.platform, prm);
    const double wall_ms = wall.elapsed_ms();
    ScenarioResult res;
    res.total = rig.host.clock.now();
    res.retries = rig.vm.device(0).stats.fault_retries;
    res.migrations = rig.vm.device(0).stats.fault_migrations;
    res.fired =
        rig.host.fault_plan ? rig.host.fault_plan->fired().size() : 0;
    g_results[label] = res;
    state.SetIterationTime(ns_to_s(res.total));
    state.counters["retries"] = static_cast<double>(res.retries);
    state.counters["migrations"] = static_cast<double>(res.migrations);
    state.counters["faults_fired"] = static_cast<double>(res.fired);
    state.counters["wall_ms"] = wall_ms;
    g_points.push_back({"fault_recovery/" + label, res.total, wall_ms});
  }
}

void print_summary() {
  print_header(
      "Fault recovery - checksum (60 DPUs, 8 MB) under injected faults",
      "transient faults cost bounded retry backoff; a rank death costs one "
      "full-rank MRAM rescue over the rank_rescue_gbps channel");
  const SimNs clean = g_results.count("clean") ? g_results["clean"].total : 0;
  std::printf("%-12s | %12s | %12s | %7s | %6s | %5s\n", "scenario",
              "total (ms)", "overhead(ms)", "retries", "migr", "fired");
  for (const auto& [label, res] : g_results) {
    const SimNs over = res.total > clean ? res.total - clean : 0;
    std::printf("%-12s | %12.3f | %12.3f | %7llu | %6llu | %5zu\n",
                label.c_str(), ns_to_ms(res.total), ns_to_ms(over),
                static_cast<unsigned long long>(res.retries),
                static_cast<unsigned long long>(res.migrations), res.fired);
    if (label != "clean") {
      g_points.push_back({"fault_recovery/" + label + "/overhead", over, 0.0});
    }
  }
}

}  // namespace
}  // namespace vpim::bench

int main(int argc, char** argv) {
  using namespace vpim::bench;
  benchmark::Initialize(&argc, argv);
  benchmark::RegisterBenchmark("fault_recovery/clean",
                               [](benchmark::State& state) {
                                 run_scenario(state, "clean", nullptr);
                               })
      ->UseManualTime()
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark(
      "fault_recovery/transient",
      [](benchmark::State& state) {
        // One transient launch fault + one MRAM ECC event, both at the
        // first operation of their channel: each retried once in place.
        static vpim::FaultPlanConfig cfg = [] {
          vpim::FaultPlanConfig c;
          c.seed = 7;
          c.transient_dpu_faults = 1;
          c.mram_ecc_faults = 1;
          c.max_op = 1;
          return c;
        }();
        run_scenario(state, "transient", &cfg);
      })
      ->UseManualTime()
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark(
      "fault_recovery/rank_death",
      [](benchmark::State& state) {
        // The bound rank dies on its first device operation; the backend
        // migrates the wrank onto a healthy rank, rescuing MRAM.
        static vpim::FaultPlanConfig cfg = [] {
          vpim::FaultPlanConfig c;
          c.seed = 11;
          c.rank_deaths = 1;
          c.max_op = 1;
          return c;
        }();
        run_scenario(state, "rank_death", &cfg);
      })
      ->UseManualTime()
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
  benchmark::RunSpecifiedBenchmarks();
  print_summary();
  write_bench_json("fault_recovery", g_points);
  benchmark::Shutdown();
  return 0;
}
