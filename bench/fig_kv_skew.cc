// KV skew sweep (ISSUE 10): an open-loop trace replays against the
// partitioned KV service at a fixed fraction of the host's *measured*
// uniform capacity, three arms:
//
//   - dist:uniform/mit:on  — the capacity anchor: uniformly drawn keys,
//     mitigation tier on (nothing for it to do);
//   - dist:zipf99/mit:on   — YCSB-style Zipf theta=0.99 hot keys with the
//     mitigation tier fighting back: the hot-key cache absorbs repeated
//     GETs host-side and the windowed rebalancer migrates hot partitions
//     off the overloaded DPU;
//   - dist:zipf99/mit:off  — the control: same trace, cache and
//     rebalancer disabled, so the hottest DPU serializes the batch and
//     the service rate falls under the offered rate.
//
// Open-loop semantics: op i's arrival is start + i * gap (gap = measured
// uniform service time / 0.7). A window executes once its last op has
// arrived; an op is *good* when its completion lands within a fixed
// budget of its own arrival. A lane that cannot keep up falls ever
// further behind the arrival schedule and its goodput collapses — the
// same lateness mechanism as fig_overload, driven by skew instead of
// offered load.
//
// Emits BENCH_kv_skew.json (goodput_ops, cache_hit_ratio, rebalances and
// p50_op_ns/p99_op_ns latency columns next to simulated_ns/wall_ms) and
// self-gates (exit 1) on the tentpole claims:
//   1. the mitigated Zipf lane holds >= 85% of uniform goodput;
//   2. the unmitigated control degrades >= 2x below uniform.
// The pNN_*_ns columns are gated against the committed baseline by
// tools/bench_diff.py (10% tolerance) in the bench-regression CI job.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "kv/kv_service.h"
#include "kv/loadgen.h"

namespace vpim::bench {
namespace {

constexpr std::uint32_t kWindow = 256;  // ops per execute() batch

struct Arm {
  const char* label;
  bool zipf;
  bool mitigation;
};
constexpr std::array<Arm, 3> kArms = {
    Arm{"kv/dist:uniform/mit:on", false, true},
    Arm{"kv/dist:zipf99/mit:on", true, true},
    Arm{"kv/dist:zipf99/mit:off", true, false}};

struct Row {
  std::string name;
  SimNs simulated_ns = 0;
  double wall_ms = 0.0;
  double goodput_ops = 0.0;  // deadline-met ops per simulated second
  double cache_hit_ratio = 0.0;
  std::uint64_t rebalances = 0;
  std::uint64_t cycles = 0;  // device round trips (diagnostic, ungated)
  SimNs p50_op_ns = 0;
  SimNs p99_op_ns = 0;
};
std::vector<Row> g_rows;

// Floored at the full 4096-op trace: the collapse gate needs ~16 windows
// for the control's lateness to accumulate, and the whole sweep costs
// ~20ms of wall clock, so VPIM_BENCH_SCALE only ever scales it *up*.
std::uint32_t trace_ops() {
  const double scaled = 4096.0 * env_scale();
  return scaled < 4096.0 ? 4096 : static_cast<std::uint32_t>(scaled);
}

kv::KvConfig kv_config(bool mitigation) {
  kv::KvConfig cfg;
  cfg.partitions = 64;
  cfg.nr_dpus = 16;
  cfg.slots_per_dpu = 8;
  cfg.slot_capacity = 256;
  // Small per-DPU inbox: a DPU holding more than its fair share of a
  // window needs extra SQ/CQ cycles, which is how skew actually costs —
  // the hot DPU multiplies the whole batch's fixed round-trip overhead.
  cfg.max_batch_ops = 4;
  cfg.hot_key_cache = mitigation;
  cfg.hot_cache_entries = 256;
  cfg.rebalance = mitigation;
  cfg.rebalance_period = 4;
  return cfg;
}

kv::LoadgenConfig trace_config(bool zipf) {
  kv::LoadgenConfig lg;
  lg.seed = 424242;
  lg.nr_ops = trace_ops();
  lg.key_space = 2048;
  lg.zipf_theta_permille = zipf ? 990 : 0;
  lg.put_permille = 100;  // read-heavy: the shape hot-key caches exist for
  lg.delete_permille = 10;
  lg.scan_permille = 2;  // scans fan to every partition; keep them rare
  return lg;
}

core::VpimConfig kv_vm_config() {
  core::VpimConfig config = core::VpimConfig::full();
  config.queue_depth = 32;
  return config;
}

struct KvRig {
  explicit KvRig(bool mitigation)
      : vm_rig(kv_vm_config(), /*nr_devices=*/1),
        svc(vm_rig.vm.device(0).frontend, vm_rig.vm.vmm().memory(),
            vm_rig.host.clock, vm_rig.host.cost, vm_rig.host.obs,
            kv_config(mitigation)) {}

  SimClock& clock() { return vm_rig.host.clock; }

  // Every key PUT once, so the measured region's GETs hit real records.
  bool preload(const kv::LoadgenConfig& lg) {
    if (!svc.open()) return false;
    std::vector<kv::KvOp> batch;
    for (std::uint64_t k = 0; k < lg.key_space; ++k) {
      batch.push_back({kv::KvOpKind::kPut, k, k * 2654435761ULL, 0});
      if (batch.size() == kWindow || k + 1 == lg.key_space) {
        for (const kv::KvResult& r : svc.execute(batch)) {
          if (r.status != kv::KvStatus::kOk) return false;
        }
        batch.clear();
      }
    }
    return true;
  }

  VmRig vm_rig;
  kv::KvService svc;
};

// The uniform lane replayed wide open (no arrival gaps): its per-op
// service time anchors the offered rate and the deadline budget every
// arm then runs against.
SimNs calibrate_uniform_ns_per_op() {
  KvRig rig(/*mitigation=*/true);
  const kv::LoadgenConfig lg = trace_config(/*zipf=*/false);
  if (!rig.preload(lg)) return 0;
  const auto trace = kv::generate_trace(lg);
  const SimNs start = rig.clock().now();
  std::vector<kv::KvOp> window;
  for (const kv::KvTraceOp& t : trace) {
    window.push_back(t.op);
    if (window.size() == kWindow) {
      rig.svc.execute(window);
      window.clear();
    }
  }
  if (!window.empty()) rig.svc.execute(window);
  rig.svc.close();
  return (rig.clock().now() - start) / trace.size();
}

void run_kv_skew(benchmark::State& state, const Arm& arm,
                 SimNs ns_per_op) {
  for (auto _ : state) {
    // Offered rate = 0.7x uniform capacity, as an exact integer gap so
    // the arrival schedule is deterministic virtual time.
    const SimNs gap = ns_per_op * 10 / 7;
    // An on-time window costs its fill time (kWindow arrivals) plus one
    // window of service; 2x the fill time covers both with headroom, and
    // a lane that falls behind eats through it within a few windows.
    const SimNs budget = 2 * kWindow * gap;

    KvRig rig(arm.mitigation);
    const kv::LoadgenConfig lg = trace_config(arm.zipf);
    if (!rig.preload(lg)) {
      state.SkipWithError("kv preload failed");
      return;
    }
    const auto trace = kv::generate_trace(lg);

    std::uint64_t good = 0;
    std::vector<SimNs> latencies;
    latencies.reserve(trace.size());
    const SimNs start = rig.clock().now();
    WallTimer timer;

    std::vector<kv::KvOp> window;
    std::vector<SimNs> arrivals;
    std::size_t issued = 0;
    auto flush = [&] {
      if (window.empty()) return;
      // Open loop: the batch may start once its last op has arrived —
      // never earlier, but the clock running late is the lane's problem.
      const SimNs ready = arrivals.back();
      if (rig.clock().now() < ready) {
        rig.clock().advance(ready - rig.clock().now());
      }
      const auto results = rig.svc.execute(window);
      const SimNs done = rig.clock().now();
      for (std::size_t i = 0; i < window.size(); ++i) {
        const SimNs latency = done - arrivals[i];
        latencies.push_back(latency);
        if (results[i].status != kv::KvStatus::kDeviceFault &&
            results[i].status != kv::KvStatus::kTimeout &&
            latency <= budget) {
          ++good;
        }
      }
      window.clear();
      arrivals.clear();
    };
    for (const kv::KvTraceOp& t : trace) {
      window.push_back(t.op);
      arrivals.push_back(start + static_cast<SimNs>(issued++) * gap);
      if (window.size() == kWindow) flush();
    }
    flush();
    const double wall = timer.elapsed_ms();
    const SimNs elapsed = rig.clock().now() - start;

    const kv::KvStats& st = rig.svc.stats();
    const std::uint64_t point_reads = st.gets;
    rig.svc.close();

    std::sort(latencies.begin(), latencies.end());
    const SimNs p50 =
        latencies.empty() ? 0 : latencies[latencies.size() / 2];
    const SimNs p99 =
        latencies.empty()
            ? 0
            : latencies[(latencies.size() * 99 + 99) / 100 - 1];
    const double goodput =
        elapsed == 0 ? 0.0 : static_cast<double>(good) / ns_to_s(elapsed);
    const double hit_ratio =
        point_reads == 0 ? 0.0
                         : static_cast<double>(st.cache_hits) /
                               static_cast<double>(point_reads);

    state.SetIterationTime(ns_to_s(elapsed));
    state.counters["goodput_ops"] = goodput;
    state.counters["cache_hit_ratio"] = hit_ratio;
    state.counters["rebalances"] = static_cast<double>(st.rebalances);
    state.counters["p99_op_ms"] = ns_to_ms(p99);
    g_rows.push_back({arm.label, elapsed, wall, goodput, hit_ratio,
                      st.rebalances, st.cycles, p50, p99});
  }
}

void write_kv_skew_json() {
  const std::string path = bench_out_path("BENCH_kv_skew.json");
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"target\": \"kv_skew\",\n  \"threads\": %u,\n",
               ThreadPool::instance().size());
  std::fprintf(f, "  \"points\": [\n");
  for (std::size_t i = 0; i < g_rows.size(); ++i) {
    std::fprintf(
        f,
        "    {\"name\": \"%s\", \"simulated_ns\": %llu, "
        "\"wall_ms\": %.3f, \"goodput_ops\": %.1f, "
        "\"cache_hit_ratio\": %.4f, \"rebalances\": %llu, "
        "\"cycles\": %llu, "
        "\"p50_op_ns\": %llu, \"p99_op_ns\": %llu}%s\n",
        g_rows[i].name.c_str(),
        static_cast<unsigned long long>(g_rows[i].simulated_ns),
        g_rows[i].wall_ms, g_rows[i].goodput_ops,
        g_rows[i].cache_hit_ratio,
        static_cast<unsigned long long>(g_rows[i].rebalances),
        static_cast<unsigned long long>(g_rows[i].cycles),
        static_cast<unsigned long long>(g_rows[i].p50_op_ns),
        static_cast<unsigned long long>(g_rows[i].p99_op_ns),
        i + 1 < g_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s (%zu points, %u host threads)\n", path.c_str(),
              g_rows.size(), ThreadPool::instance().size());
}

const Row* find_row(const char* label) {
  for (const Row& row : g_rows) {
    if (row.name == label) return &row;
  }
  return nullptr;
}

bool print_summary() {
  print_header(
      "KV skew - Zipf theta=0.99 vs uniform, mitigation on vs off",
      "hot-key cache + partition rebalance hold skewed goodput within 15% "
      "of uniform while the unmitigated control collapses >= 2x");
  std::printf("%-26s | %12s | %12s | %7s | %6s | %7s | %10s\n", "point",
              "simulated", "goodput/s", "cache", "moves", "cycles", "p99 op");
  for (const Row& row : g_rows) {
    std::printf(
        "%-26s | %10.2fms | %12.1f | %6.1f%% | %6llu | %7llu | %8.2fms\n",
        row.name.c_str(), ns_to_ms(row.simulated_ns), row.goodput_ops,
        row.cache_hit_ratio * 100.0,
        static_cast<unsigned long long>(row.rebalances),
        static_cast<unsigned long long>(row.cycles),
        ns_to_ms(row.p99_op_ns));
  }

  bool ok = true;
  const Row* uniform = find_row("kv/dist:uniform/mit:on");
  const Row* mitigated = find_row("kv/dist:zipf99/mit:on");
  const Row* control = find_row("kv/dist:zipf99/mit:off");
  if (uniform == nullptr || mitigated == nullptr || control == nullptr ||
      uniform->goodput_ops <= 0.0) {
    std::fprintf(stderr, "FAIL: missing arm or zero uniform goodput\n");
    return false;
  }
  if (mitigated->goodput_ops < 0.85 * uniform->goodput_ops) {
    std::fprintf(stderr,
                 "FAIL: mitigated zipf goodput (%.1f/s) fell below 85%% "
                 "of uniform (%.1f/s)\n",
                 mitigated->goodput_ops, uniform->goodput_ops);
    ok = false;
  }
  if (control->goodput_ops > 0.5 * uniform->goodput_ops) {
    std::fprintf(stderr,
                 "FAIL: unmitigated control (%.1f/s) did not degrade "
                 ">= 2x below uniform (%.1f/s)\n",
                 control->goodput_ops, uniform->goodput_ops);
    ok = false;
  }
  return ok;
}

}  // namespace
}  // namespace vpim::bench

int main(int argc, char** argv) {
  using namespace vpim::bench;
  benchmark::Initialize(&argc, argv);
  const vpim::SimNs ns_per_op = calibrate_uniform_ns_per_op();
  if (ns_per_op == 0) {
    std::fprintf(stderr, "FAIL: uniform calibration measured zero\n");
    return 1;
  }
  for (const Arm& arm : kArms) {
    benchmark::RegisterBenchmark(
        arm.label,
        [&arm, ns_per_op](benchmark::State& state) {
          run_kv_skew(state, arm, ns_per_op);
        })
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::RunSpecifiedBenchmarks();
  const bool ok = print_summary();
  write_kv_skew_json();
  benchmark::Shutdown();
  return ok ? 0 : 1;
}
