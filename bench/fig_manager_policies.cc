// Manager placement-policy ablation (ISSUE 9): one churning multi-tenant
// trace of wrank allocate/release ops, replayed identically against each
// placement policy (first_fit, best_fit, consolidating).
//
// The trace mixes 1- and 2-slot wrank allocations with a 4-slot (whole
// co-located rank) request every 8th op, under enough occupancy pressure
// (~22 of 32 slots) that where the small wranks land decides whether a
// whole-rank-sized hole exists when the big request arrives:
//
//   - first_fit scatters: 2-slot requests skip 1-slot holes, so holes
//     accumulate low and occupancy creeps across every rank — the 4-slot
//     request finds no hole, eats the full retry/timeout path, and the
//     allocation tail grows;
//   - best_fit packs on placement but never repairs fragmentation that
//     releases have already created;
//   - consolidating = best_fit placement + a background consolidation
//     pass (every 4 ops here, modeling the observer tick) that migrates
//     wranks off underfull ranks and frees whole ranks.
//
// Latency is the virtual-clock delta across each allocate_wrank call
// (36 ms socket round trip + any retry waits and in-line resets), so the
// percentiles are bit-identical at any VPIM_THREADS setting. Emits
// BENCH_manager_policies.json (p50_alloc_ns / p99_alloc_ns / frag_permille
// columns next to simulated_ns/wall_ms; gated by tools/bench_diff.py) and
// self-gates (exit 1) on the tentpole claim: consolidating beats first_fit
// on p99 allocation latency or fragmentation, without losing on the other.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <array>
#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace vpim::bench {
namespace {

constexpr std::uint32_t kTenants = 4;
constexpr std::uint32_t kSlotsPerRank = 4;
// Small-wrank occupancy the churn hovers at: 22 of 32 slots across 8
// ranks, so only a packed machine has a whole rank free for the big
// requests.
constexpr std::uint32_t kTargetSmallSlots = 22;

struct Row {
  std::string name;
  SimNs simulated_ns = 0;
  double wall_ms = 0.0;
  SimNs p50_alloc_ns = 0;
  SimNs p99_alloc_ns = 0;
  std::uint32_t frag_permille = 0;  // mean over post-op samples
  std::uint64_t failed_allocs = 0;
  std::uint64_t consolidation_migrations = 0;
  core::PlacementPolicyKind kind = core::PlacementPolicyKind::kFirstFit;
};
std::vector<Row> g_rows;

std::uint32_t trace_ops() {
  const double scaled = 2400.0 * env_scale();
  return scaled < 120.0 ? 120 : static_cast<std::uint32_t>(scaled);
}

core::ManagerConfig policies_manager() {
  core::ManagerConfig cfg = bench_manager();
  cfg.wrank_slots_per_rank = kSlotsPerRank;
  return cfg;
}

// Deterministic per-run PRNG: xorshift64 from a fixed seed, so every
// policy replays the exact same trace decisions.
struct Rng {
  std::uint64_t s = 0x9E3779B97F4A7C15ull;
  std::uint64_t next() {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  }
};

SimNs percentile(std::vector<SimNs>& v, std::uint32_t p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  std::size_t idx = (v.size() * p + 99) / 100;  // ceil(size * p / 100)
  if (idx == 0) idx = 1;
  if (idx > v.size()) idx = v.size();
  return v[idx - 1];
}

void run_policy(benchmark::State& state, core::PlacementPolicyKind kind) {
  for (auto _ : state) {
    core::ManagerConfig mcfg = policies_manager();
    mcfg.placement = kind;
    core::Host host{upmem::MachineConfig{}, bench_cost(), mcfg};
    core::Manager& mgr = host.manager;

    Rng rng;
    std::vector<std::uint64_t> small_live;
    std::uint64_t big_live = 0;  // at most one 4-slot wrank in flight
    std::uint32_t small_slots = 0;
    std::vector<SimNs> latencies;
    std::uint64_t failed = 0;
    std::uint64_t frag_sum = 0;
    std::uint32_t frag_n = 0;
    const std::uint32_t ops = trace_ops();
    latencies.reserve(ops);

    auto timed_alloc = [&](std::uint32_t tenant_idx, std::uint32_t slots) {
      const SimNs t0 = host.clock.now();
      const core::AllocResult r = mgr.allocate_wrank(
          "tenant-" + std::to_string(tenant_idx), slots);
      latencies.push_back(host.clock.now() - t0);
      if (r.status != core::AllocStatus::kOk) {
        ++failed;
        return std::uint64_t{0};
      }
      return r.wrank;
    };

    WallTimer timer;
    const SimNs start = host.clock.now();
    for (std::uint32_t i = 0; i < ops; ++i) {
      // Background observer tick: drains NANA ranks back to fresh NAAV so
      // in-line 597 ms erases stay off the allocation path for every
      // policy alike.
      mgr.observe(/*do_resets=*/true);
      if (i % 8 == 7) {
        // Whole-co-located-rank request: the tail-latency probe.
        if (big_live != 0) {
          mgr.release_wrank(big_live);
          big_live = 0;
        }
        big_live = timed_alloc(static_cast<std::uint32_t>(rng.next()) %
                                   kTenants,
                               kSlotsPerRank);
      } else if (small_slots < kTargetSmallSlots) {
        const std::uint32_t slots =
            1 + (static_cast<std::uint32_t>(rng.next()) & 1);
        const std::uint64_t id = timed_alloc(
            static_cast<std::uint32_t>(rng.next()) % kTenants, slots);
        if (id != 0) {
          small_live.push_back(id);
          small_slots += slots;
        }
      } else {
        const std::size_t victim =
            static_cast<std::size_t>(rng.next() % small_live.size());
        const std::uint64_t id = small_live[victim];
        std::uint32_t victim_slots = 0;
        for (const core::WrankInfo& w : mgr.wranks()) {
          if (w.id == id) victim_slots = w.slots;
        }
        mgr.release_wrank(id);
        small_live.erase(small_live.begin() +
                         static_cast<std::ptrdiff_t>(victim));
        small_slots -= victim_slots;
      }
      if (mgr.policy_wants_consolidation() && i % 4 == 3) {
        mgr.consolidate();
      }
      frag_sum += mgr.fragmentation_permille();
      ++frag_n;
    }
    const double wall = timer.elapsed_ms();
    const SimNs elapsed = host.clock.now() - start;

    // Invariant: nothing lost — live wranks match what the manager holds.
    const std::size_t live =
        small_live.size() + (big_live != 0 ? 1 : 0);
    if (mgr.wranks().size() != live) {
      state.SkipWithError("wrank lost or duplicated during churn");
      return;
    }

    Row row;
    row.name = std::string("policies/") + core::to_string(kind);
    row.simulated_ns = elapsed;
    row.wall_ms = wall;
    row.p50_alloc_ns = percentile(latencies, 50);
    row.p99_alloc_ns = percentile(latencies, 99);
    row.frag_permille =
        frag_n == 0 ? 0 : static_cast<std::uint32_t>(frag_sum / frag_n);
    row.failed_allocs = failed;
    row.consolidation_migrations =
        mgr.stats().consolidation_migrations;
    row.kind = kind;
    g_rows.push_back(row);

    state.SetIterationTime(ns_to_s(elapsed));
    state.counters["p99_alloc_ms"] = ns_to_ms(row.p99_alloc_ns);
    state.counters["frag_permille"] = row.frag_permille;
    state.counters["failed_allocs"] = static_cast<double>(failed);
  }
}

void write_policies_json() {
  const std::string path = bench_out_path("BENCH_manager_policies.json");
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f,
               "{\n  \"target\": \"manager_policies\",\n  \"threads\": %u,\n",
               ThreadPool::instance().size());
  std::fprintf(f, "  \"points\": [\n");
  for (std::size_t i = 0; i < g_rows.size(); ++i) {
    const Row& r = g_rows[i];
    std::fprintf(
        f,
        "    {\"name\": \"%s\", \"simulated_ns\": %llu, "
        "\"wall_ms\": %.3f, \"p50_alloc_ns\": %llu, "
        "\"p99_alloc_ns\": %llu, \"frag_permille\": %u, "
        "\"failed_allocs\": %llu, \"consolidation_migrations\": %llu}%s\n",
        r.name.c_str(), static_cast<unsigned long long>(r.simulated_ns),
        r.wall_ms, static_cast<unsigned long long>(r.p50_alloc_ns),
        static_cast<unsigned long long>(r.p99_alloc_ns), r.frag_permille,
        static_cast<unsigned long long>(r.failed_allocs),
        static_cast<unsigned long long>(r.consolidation_migrations),
        i + 1 < g_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s (%zu points, %u host threads)\n", path.c_str(),
              g_rows.size(), ThreadPool::instance().size());
}

const Row* find_row(core::PlacementPolicyKind kind) {
  for (const Row& row : g_rows) {
    if (row.kind == kind) return &row;
  }
  return nullptr;
}

bool print_summary() {
  print_header(
      "Manager placement-policy ablation (churning multi-tenant trace)",
      "consolidation keeps whole-rank holes available: the consolidating "
      "policy beats first-fit on p99 allocation latency or fragmentation");
  std::printf("%-24s | %12s | %12s | %12s | %6s | %6s\n", "policy",
              "simulated", "p50 alloc", "p99 alloc", "frag", "failed");
  for (const Row& row : g_rows) {
    std::printf("%-24s | %10.2fms | %10.2fms | %10.2fms | %5u%% | %6llu\n",
                row.name.c_str(), ns_to_ms(row.simulated_ns),
                ns_to_ms(row.p50_alloc_ns), ns_to_ms(row.p99_alloc_ns),
                row.frag_permille / 10,
                static_cast<unsigned long long>(row.failed_allocs));
  }
  const Row* ff = find_row(core::PlacementPolicyKind::kFirstFit);
  const Row* cons = find_row(core::PlacementPolicyKind::kConsolidating);
  if (ff == nullptr || cons == nullptr) {
    std::fprintf(stderr, "FAIL: missing ablation rows\n");
    return false;
  }
  // Tentpole claim: consolidating strictly wins on at least one axis and
  // loses on neither.
  const bool p99_win = cons->p99_alloc_ns < ff->p99_alloc_ns;
  const bool frag_win = cons->frag_permille < ff->frag_permille;
  const bool no_loss = cons->p99_alloc_ns <= ff->p99_alloc_ns &&
                       cons->frag_permille <= ff->frag_permille;
  if (!((p99_win || frag_win) && no_loss)) {
    std::fprintf(stderr,
                 "FAIL: consolidating (p99 %.2fms, frag %u) does not beat "
                 "first_fit (p99 %.2fms, frag %u)\n",
                 ns_to_ms(cons->p99_alloc_ns), cons->frag_permille,
                 ns_to_ms(ff->p99_alloc_ns), ff->frag_permille);
    return false;
  }
  return true;
}

}  // namespace
}  // namespace vpim::bench

int main(int argc, char** argv) {
  using namespace vpim::bench;
  benchmark::Initialize(&argc, argv);
  for (const vpim::core::PlacementPolicyKind kind :
       {vpim::core::PlacementPolicyKind::kFirstFit,
        vpim::core::PlacementPolicyKind::kBestFit,
        vpim::core::PlacementPolicyKind::kConsolidating}) {
    const std::string name =
        std::string("policies/") + vpim::core::to_string(kind);
    benchmark::RegisterBenchmark(name.c_str(),
                                 [kind](benchmark::State& state) {
                                   run_policy(state, kind);
                                 })
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::RunSpecifiedBenchmarks();
  const bool ok = print_summary();
  write_policies_json();
  benchmark::Shutdown();
  return ok ? 0 : 1;
}
