// Fig 14: NW under vPIM-C / vPIM+P / vPIM+B / vPIM+PB, with segment
// breakdown. Paper: the prefetch cache cuts read (DPU-CPU) time ~89.3%,
// request batching cuts CPU-DPU and Inter-DPU writes ~95.8%/95.3%, the
// combination improves vPIM-C by ~10.8x; unoptimized vPIM-C is ~53x
// native.
#include <benchmark/benchmark.h>

#include <map>
#include <vector>

#include "bench/bench_util.h"

namespace vpim::bench {
namespace {

struct Row {
  prim::AppResult app;
  core::DeviceStats stats;
};
std::map<int, Row> g_rows;  // ordered by config index
SimNs g_native_total = 0;
prim::AppResult g_native;

const std::vector<core::VpimConfig>& configs() {
  static const std::vector<core::VpimConfig> kConfigs = [] {
    std::vector<core::VpimConfig> v = {
        core::VpimConfig::c_only(), core::VpimConfig::with_prefetch(),
        core::VpimConfig::with_batching(),
        core::VpimConfig::with_prefetch_batching()};
    // ISSUE 7 rider: +PB again with a deep submission queue. Only posted
    // batch flushes ride the SQ here (the SDK path still blocks per op),
    // so the doorbell saving saturates quickly — but it must exist.
    core::VpimConfig deep = core::VpimConfig::with_prefetch_batching();
    deep.queue_depth = 8;
    deep.label = "vPIM+PB*8";
    v.push_back(deep);
    return v;
  }();
  return kConfigs;
}

double vmexits_per_message(const core::DeviceStats& stats) {
  const std::uint64_t messages = stats.notifies + stats.coalesced_notifies;
  return messages == 0 ? 0.0
                       : static_cast<double>(stats.doorbells) /
                             static_cast<double>(messages);
}

prim::AppParams nw_params() {
  prim::AppParams prm;
  prm.nr_dpus = 60;  // strong-scaling single-rank configuration
  prm.scale = env_scale();
  // The paper's Fig 14 NW variant moves boundaries element-wise (>15000
  // operations of ~109 bytes per DPU); run with finer-grained transfers
  // than the Fig 8 configuration.
  prm.xfer_grain = 0.25;
  return prm;
}

void run_native(benchmark::State& state) {
  for (auto _ : state) {
    NativeRig rig;
    g_native = prim::make_app("NW")->run(rig.platform, nw_params());
    g_native_total = g_native.total();
    state.SetIterationTime(ns_to_s(g_native_total));
    state.counters["correct"] = g_native.correct ? 1 : 0;
  }
}

void run_config(benchmark::State& state, int index) {
  const core::VpimConfig& config = configs()[index];
  for (auto _ : state) {
    VmRig rig(config, 1);
    Row row;
    row.app = prim::make_app("NW")->run(rig.platform, nw_params());
    row.stats = rig.vm.device(0).stats;
    state.SetIterationTime(ns_to_s(row.app.total()));
    state.counters["correct"] = row.app.correct ? 1 : 0;
    state.counters["messages"] = static_cast<double>(row.stats.notifies);
    state.counters["vmexits_per_op"] = vmexits_per_message(row.stats);
    g_rows[index] = row;
  }
}

// Returns false when the deep-queue row fails to strictly reduce modeled
// VMEXITs per message relative to the depth-1 +PB row.
bool print_summary() {
  print_header(
      "Fig 14 - NW with prefetch/batching ablation (single rank)",
      "vPIM-C ~53x native; +P cuts read time ~89.3% (messages 5000->125); "
      "+B cuts CPU-DPU/Inter-DPU writes ~95.8%/95.3% (messages "
      "10000->402); +PB improves vPIM-C by ~10.8x");
  std::printf("%-9s | %10s %10s %10s %10s | %10s | %8s | %9s | %8s\n",
              "config", "CPU-DPU", "DPU", "Inter-DPU", "DPU-CPU", "total",
              "vs nat", "messages", "speedup");
  std::printf("%-9s | %9.1fms %9.1fms %9.1fms %9.1fms | %9.1fms |\n",
              "native", ns_to_ms(g_native.breakdown[Segment::kCpuDpu]),
              ns_to_ms(g_native.breakdown[Segment::kDpu]),
              ns_to_ms(g_native.breakdown[Segment::kInterDpu]),
              ns_to_ms(g_native.breakdown[Segment::kDpuCpu]),
              ns_to_ms(g_native_total));
  const SimNs base =
      g_rows.count(0) ? g_rows.at(0).app.total() : 0;
  for (const auto& [index, row] : g_rows) {
    std::printf(
        "%-9s | %9.1fms %9.1fms %9.1fms %9.1fms | %9.1fms | %7.1fx | "
        "%9lu | %7.2fx\n",
        configs()[index].label.c_str(),
        ns_to_ms(row.app.breakdown[Segment::kCpuDpu]),
        ns_to_ms(row.app.breakdown[Segment::kDpu]),
        ns_to_ms(row.app.breakdown[Segment::kInterDpu]),
        ns_to_ms(row.app.breakdown[Segment::kDpuCpu]),
        ns_to_ms(row.app.total()), ratio(row.app.total(), g_native_total),
        static_cast<unsigned long>(row.stats.notifies),
        ratio(base, row.app.total()));
  }
  if (g_rows.count(3) == 0 || g_rows.count(4) == 0) return true;
  const double d1 = vmexits_per_message(g_rows.at(3).stats);
  const double d8 = vmexits_per_message(g_rows.at(4).stats);
  std::printf("vmexits/message: +PB %.4f -> +PB*8 %.4f\n", d1, d8);
  if (d8 >= d1) {
    std::fprintf(stderr,
                 "FAIL: queue depth 8 does not strictly reduce modeled "
                 "vmexits per message (%.4f vs %.4f)\n",
                 d8, d1);
    return false;
  }
  return true;
}

}  // namespace
}  // namespace vpim::bench

int main(int argc, char** argv) {
  using namespace vpim::bench;
  benchmark::Initialize(&argc, argv);
  benchmark::RegisterBenchmark("fig14/native", run_native)
      ->UseManualTime()
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
  for (int i = 0; i < static_cast<int>(configs().size()); ++i) {
    const std::string name = "fig14/" + configs()[i].label;
    benchmark::RegisterBenchmark(name.c_str(),
                                 [i](benchmark::State& state) {
                                   run_config(state, i);
                                 })
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::RunSpecifiedBenchmarks();
  const bool ok = print_summary();
  benchmark::Shutdown();
  return ok ? 0 : 1;
}
