// Overload sweep (ISSUE 8): open-loop offered load from well under to 4x
// the host's measured capacity, four tenants, two lanes:
//
//   - adm:on  — AdmissionController installed; excess submissions are shed
//     typed (ADMISSION_REJECT / OVERLOADED) at the guest's try_submit
//     boundary for ~300 ns each, before any staging or device work;
//   - adm:off — the control: every submission is staged and the only
//     protection is the backend's deadline shedding, so past the knee the
//     host burns its capacity staging and draining doomed work.
//
// Every request carries an absolute deadline relative to its *intended*
// arrival time (deadline = arrival + 8x mean service), which is what makes
// overload visible: once the clock falls behind the arrival schedule,
// unprotected submissions are dead on arrival. Goodput counts completions
// that were reaped by their deadline.
//
// Emits BENCH_overload.json (goodput_ops, shed_ratio, p99_admitted_ns
// columns next to simulated_ns/wall_ms) and self-gates (exit 1) on the
// tentpole claims:
//   1. adm:on goodput at every overloaded point stays within 10% of the
//      pre-knee plateau;
//   2. at 4x the admission-off control's goodput is strictly worse.
// The admitted-p99 column is gated against the committed baseline by
// tools/bench_diff.py (10% tolerance) in the perf-regression CI job.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <array>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace vpim::bench {
namespace {

constexpr std::uint32_t kTenants = 4;

// Offered load as an exact rational multiple of measured capacity, so the
// arrival schedule is integer virtual time (determinism: no float drift).
struct Level {
  const char* label;
  std::uint32_t num;
  std::uint32_t den;
};
// 0.9x rather than 1.0x as the top pre-knee point: capacity is measured
// empirically and offering exactly 1.0x sits on the knife's edge where a
// lateness random walk can tip either way.
constexpr std::array<Level, 4> kLevels = {
    Level{"0.5x", 1, 2}, Level{"0.9x", 9, 10}, Level{"2x", 2, 1},
    Level{"4x", 4, 1}};

struct Row {
  std::string name;
  SimNs simulated_ns = 0;
  double wall_ms = 0.0;
  double goodput_ops = 0.0;  // deadline-met completions per simulated sec
  double shed_ratio = 0.0;   // typed try_submit sheds / offered
  SimNs p99_admitted_ns = 0; // submit -> reap, admitted requests only
  bool admission_on = false;
  const Level* level = nullptr;
};
std::vector<Row> g_rows;

std::uint32_t offered_requests() {
  const double scaled = 512.0 * env_scale();
  return scaled < 128.0 ? 128 : static_cast<std::uint32_t>(scaled);
}

core::VpimConfig overload_config() {
  core::VpimConfig config = core::VpimConfig::full();
  // Caching and batching off: every request is one wire message, so the
  // measured service time is the thing admission is calibrated against.
  config.prefetch_cache = false;
  config.request_batching = false;
  // Deep SQ: staging never auto-kicks, so submissions stay cheap and the
  // device work happens at the generator's reap points.
  config.queue_depth = 32;
  config.cq_capacity = 64;
  return config;
}

void run_overload(benchmark::State& state, const Level& level,
                  bool admission_on) {
  for (auto _ : state) {
    VmRig rig(overload_config(), /*nr_devices=*/kTenants);
    std::array<core::Frontend*, kTenants> fes{};
    std::array<std::span<std::uint8_t>, kTenants> bufs{};
    for (std::uint32_t t = 0; t < kTenants; ++t) {
      fes[t] = &rig.vm.device(t).frontend;
      if (!fes[t]->open()) {
        state.SkipWithError("no rank available");
        return;
      }
      bufs[t] = rig.vm.vmm().memory().alloc(4 * kKiB);
    }
    const std::uint32_t nr_dpus = fes[0]->nr_dpus();
    auto matrix_for = [&](std::uint32_t t, std::uint32_t seq) {
      driver::TransferMatrix m;
      m.direction = driver::XferDirection::kToRank;
      m.entries.push_back(
          {seq % nr_dpus, 0, bufs[t].data(), bufs[t].size()});
      return m;
    };

    // Calibration phase 1 — rough estimate from closed-loop bursts of 4
    // through the deep-queue pipelined path, just to size the reap
    // cadence of phase 2.
    constexpr std::uint32_t kCalibRounds = 8;
    constexpr std::uint32_t kCalibBurst = 4;
    const SimNs est_start = rig.host.clock.now();
    for (std::uint32_t r = 0; r < kCalibRounds; ++r) {
      for (std::uint32_t t = 0; t < kTenants; ++t) {
        for (std::uint32_t b = 0; b < kCalibBurst; ++b) {
          fes[t]->submit_write(matrix_for(t, r * kCalibBurst + b));
        }
        while (!fes[t]->poll_completions().empty()) {
        }
      }
    }
    const SimNs service_est = (rig.host.clock.now() - est_start) /
                              (kCalibRounds * kTenants * kCalibBurst);
    if (service_est == 0) {
      state.SkipWithError("calibration measured zero service time");
      return;
    }

    // Calibration phase 2 — true capacity of the generator's own shape:
    // run its arrival loop wide open (zero inter-arrival gap, no
    // deadlines, no admission yet) with the same fixed-cadence reaps the
    // measured region uses. This folds the reap/poll overheads into the
    // service time, which a synthetic burst pass understates — and an
    // offered-load multiplier only means anything against the rate this
    // exact loop can actually sustain. Both lanes run it identically.
    constexpr std::uint32_t kSatRequests = 64;
    std::array<SimNs, kTenants> sat_reap{};
    const SimNs sat_period = 8 * service_est;
    const SimNs sat_start = rig.host.clock.now();
    for (std::uint32_t t = 0; t < kTenants; ++t) {
      sat_reap[t] = sat_start + (t + 1) * (sat_period / kTenants);
    }
    std::uint32_t sat_reaped = 0;
    for (std::uint32_t i = 0; i < kSatRequests; ++i) {
      for (std::uint32_t t = 0; t < kTenants; ++t) {
        if (rig.host.clock.now() >= sat_reap[t]) {
          sat_reaped += static_cast<std::uint32_t>(
              fes[t]->poll_completions().size());
          sat_reap[t] = rig.host.clock.now() + sat_period;
        }
      }
      fes[i % kTenants]->submit_write(
          matrix_for(i % kTenants, i / kTenants));
    }
    for (std::uint32_t t = 0; t < kTenants; ++t) {
      while (sat_reaped < kSatRequests &&
             !fes[t]->poll_completions().empty()) {
        // poll_completions drains the CQ in batches; keep going until dry.
      }
    }
    const SimNs service_ns =
        (rig.host.clock.now() - sat_start) / kSatRequests;
    if (service_ns == 0) {
      state.SkipWithError("saturation pass measured zero service time");
      return;
    }

    if (admission_on) {
      core::AdmissionConfig acfg;
      // The binding control in this sweep is the in-flight budget: at 1x
      // each tenant holds at most ~4 admitted-unreaped requests between
      // reap turns, so 4 per tenant is exactly the pre-knee high-water
      // mark and everything past it is overload. The token rate is each
      // tenant's fair share of measured capacity with slack for the
      // calibration margin.
      acfg.tokens_per_sec =
          2'000'000'000ull / (static_cast<std::uint64_t>(service_ns) *
                              kTenants);
      acfg.bucket_burst = 16;
      // One reap period holds 8 service times of admitted work across 4
      // tenants, so ~2 admitted-unreaped requests per tenant is the
      // pre-knee high-water mark; 10 leaves one period of jitter slack
      // above it and everything beyond is overload.
      acfg.global_inflight_budget = 10;
      rig.host.install_admission(acfg);
    }

    const std::uint32_t offered = offered_requests();
    const SimNs gap = service_ns * level.den / level.num;
    // Reaps run on a fixed virtual-time cadence (below), so a request
    // admitted on time waits at most one reap period plus its batch
    // (~12 service times); the rest of the budget is the lateness
    // headroom overload eats through before submissions go dead on
    // arrival.
    const SimNs reap_period = 8 * service_ns;
    const SimNs deadline_budget = 24 * service_ns;

    struct Pending {
      SimNs submit_t = 0;
      SimNs deadline = 0;
    };
    std::array<std::map<core::Frontend::Ticket, Pending>, kTenants> pend;
    std::uint64_t sheds = 0;
    std::uint64_t good = 0;
    std::uint64_t reaped = 0;
    std::vector<SimNs> latencies;
    latencies.reserve(offered);

    auto drain = [&](std::uint32_t t) {
      for (const core::Frontend::Completion& c :
           fes[t]->poll_completions()) {
        auto it = pend[t].find(c.ticket);
        if (it == pend[t].end()) continue;
        latencies.push_back(rig.host.clock.now() - it->second.submit_t);
        // The device is the deadline authority: work it could not start
        // by the wire deadline comes back as a typed TIMEOUT shed, so a
        // zero status means the request was served in time.
        if (c.status == 0) ++good;
        ++reaped;
        pend[t].erase(it);
      }
    };

    const SimNs start = rig.host.clock.now();
    // Reaps happen on a fixed virtual-time schedule, staggered per
    // tenant, NOT per submission: that keeps the reap cadence identical
    // across offered loads, so overload shows up as admitted-unreaped
    // work piling up between reap turns rather than as a polling
    // artifact of the generator.
    std::array<SimNs, kTenants> next_reap{};
    for (std::uint32_t t = 0; t < kTenants; ++t) {
      next_reap[t] = start + (t + 1) * (reap_period / kTenants);
    }
    WallTimer timer;
    for (std::uint32_t i = 0; i < offered; ++i) {
      const SimNs arrival = start + static_cast<SimNs>(i) * gap;
      if (rig.host.clock.now() < arrival) {
        rig.host.clock.advance(arrival - rig.host.clock.now());
      }
      for (std::uint32_t t = 0; t < kTenants; ++t) {
        if (rig.host.clock.now() >= next_reap[t]) {
          drain(t);
          next_reap[t] = rig.host.clock.now() + reap_period;
        }
      }
      const std::uint32_t t = i % kTenants;
      // The deadline keys off the intended arrival, not the (possibly
      // late) submit: work the host cannot start on time is already dead.
      const SimNs deadline = arrival + deadline_budget;
      const core::Frontend::SubmitResult r =
          fes[t]->try_submit_write(matrix_for(t, i / kTenants), deadline);
      if (!r.ok()) {
        ++sheds;
        continue;
      }
      pend[t][r.ticket] = {rig.host.clock.now(), deadline};
    }
    for (std::uint32_t t = 0; t < kTenants; ++t) {
      int idle = 0;
      while (!pend[t].empty() && idle < 2) {
        const std::size_t before = pend[t].size();
        drain(t);
        idle = pend[t].size() == before ? idle + 1 : 0;
      }
      fes[t]->close();
    }
    const double wall = timer.elapsed_ms();
    const SimNs elapsed = rig.host.clock.now() - start;

    const bool correct = reaped + sheds == offered;
    std::sort(latencies.begin(), latencies.end());
    const SimNs p99 =
        latencies.empty()
            ? 0
            : latencies[(latencies.size() * 99 + 99) / 100 - 1];
    const double goodput =
        elapsed == 0 ? 0.0 : static_cast<double>(good) / ns_to_s(elapsed);
    const double shed_ratio =
        static_cast<double>(sheds) / static_cast<double>(offered);

    state.SetIterationTime(ns_to_s(elapsed));
    state.counters["correct"] = correct ? 1 : 0;
    state.counters["goodput_ops"] = goodput;
    state.counters["shed_ratio"] = shed_ratio;
    state.counters["p99_admitted_ms"] = ns_to_ms(p99);
    const std::string name = std::string("overload/adm:") +
                             (admission_on ? "on" : "off") +
                             "/load:" + level.label;
    g_rows.push_back({name, elapsed, wall, goodput, shed_ratio, p99,
                      admission_on, &level});
    if (!correct) {
      state.SkipWithError("requests lost: reaped + sheds != offered");
      return;
    }
  }
}

void write_overload_json() {
  const std::string path = bench_out_path("BENCH_overload.json");
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"target\": \"overload\",\n  \"threads\": %u,\n",
               ThreadPool::instance().size());
  std::fprintf(f, "  \"points\": [\n");
  for (std::size_t i = 0; i < g_rows.size(); ++i) {
    std::fprintf(
        f,
        "    {\"name\": \"%s\", \"simulated_ns\": %llu, "
        "\"wall_ms\": %.3f, \"goodput_ops\": %.1f, "
        "\"shed_ratio\": %.4f, \"p99_admitted_ns\": %llu}%s\n",
        g_rows[i].name.c_str(),
        static_cast<unsigned long long>(g_rows[i].simulated_ns),
        g_rows[i].wall_ms, g_rows[i].goodput_ops, g_rows[i].shed_ratio,
        static_cast<unsigned long long>(g_rows[i].p99_admitted_ns),
        i + 1 < g_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s (%zu points, %u host threads)\n", path.c_str(),
              g_rows.size(), ThreadPool::instance().size());
}

const Row* find_row(bool admission_on, const char* label) {
  for (const Row& row : g_rows) {
    if (row.admission_on == admission_on &&
        std::string(row.level->label) == label) {
      return &row;
    }
  }
  return nullptr;
}

bool print_summary() {
  print_header(
      "Overload - offered-load sweep, admission on vs off (4 tenants)",
      "typed admission sheds the overflow before it costs anything; "
      "goodput and admitted p99 hold their pre-knee plateau at 2-4x load");
  std::printf("%-24s | %12s | %12s | %10s | %12s\n", "point", "simulated",
              "goodput/s", "shed", "p99 admitted");
  for (const Row& row : g_rows) {
    std::printf("%-24s | %10.2fms | %12.1f | %9.1f%% | %10.2fms\n",
                row.name.c_str(), ns_to_ms(row.simulated_ns),
                row.goodput_ops, row.shed_ratio * 100.0,
                ns_to_ms(row.p99_admitted_ns));
  }

  bool ok = true;
  const Row* on_pre = find_row(true, "0.9x");
  double plateau = on_pre != nullptr ? on_pre->goodput_ops : 0.0;
  if (const Row* r = find_row(true, "0.5x")) {
    plateau = std::max(plateau, r->goodput_ops);
  }
  for (const char* label : {"2x", "4x"}) {
    const Row* r = find_row(true, label);
    if (r == nullptr || plateau <= 0.0) continue;
    if (r->goodput_ops < 0.9 * plateau) {
      std::fprintf(stderr,
                   "FAIL: adm:on goodput at %s (%.1f/s) fell more than "
                   "10%% below the pre-knee plateau (%.1f/s)\n",
                   label, r->goodput_ops, plateau);
      ok = false;
    }
  }
  const Row* on_4x = find_row(true, "4x");
  const Row* off_4x = find_row(false, "4x");
  if (on_4x != nullptr && off_4x != nullptr &&
      off_4x->goodput_ops >= on_4x->goodput_ops) {
    std::fprintf(stderr,
                 "FAIL: admission-off control at 4x (%.1f/s) did not "
                 "degrade below the protected lane (%.1f/s)\n",
                 off_4x->goodput_ops, on_4x->goodput_ops);
    ok = false;
  }
  return ok;
}

}  // namespace
}  // namespace vpim::bench

int main(int argc, char** argv) {
  using namespace vpim::bench;
  benchmark::Initialize(&argc, argv);
  for (const bool admission_on : {true, false}) {
    for (const Level& level : kLevels) {
      const std::string name = std::string("overload/adm:") +
                               (admission_on ? "on" : "off") +
                               "/load:" + level.label;
      benchmark::RegisterBenchmark(
          name.c_str(),
          [&level, admission_on](benchmark::State& state) {
            run_overload(state, level, admission_on);
          })
          ->UseManualTime()
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
  benchmark::RunSpecifiedBenchmarks();
  const bool ok = print_summary();
  write_overload_json();
  benchmark::Shutdown();
  return ok ? 0 : 1;
}
