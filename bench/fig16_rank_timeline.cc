// Fig 16: per-rank virtio request execution time for one write-to-rank
// operation across 8 ranks. Sequential handling (stock Firecracker event
// loop) makes each successive rank's request wait behind the previous
// ones; parallel handling gives near-uniform times.
#include <benchmark/benchmark.h>

#include <map>
#include <vector>

#include "bench/bench_util.h"

namespace vpim::bench {
namespace {

constexpr std::uint32_t kRanks = 8;
std::map<bool, std::vector<SimNs>> g_timelines;

std::vector<SimNs> run_timeline(bool parallel) {
  VmRig rig(parallel ? core::VpimConfig::full()
                     : core::VpimConfig::sequential(),
            kRanks);
  const std::uint64_t bytes = static_cast<std::uint64_t>(
      static_cast<double>(60 * kMiB) * env_scale());
  auto payload = rig.vm.vmm().memory().alloc(bytes);
  for (std::uint32_t r = 0; r < kRanks; ++r) {
    VPIM_CHECK(rig.vm.device(r).frontend.open(), "bind failed");
  }
  // One write-to-rank per rank, submitted concurrently by the guest.
  std::vector<std::function<void()>> branches;
  branches.reserve(kRanks);
  for (std::uint32_t r = 0; r < kRanks; ++r) {
    branches.push_back([&rig, &payload, bytes, r] {
      driver::TransferMatrix m;
      for (std::uint32_t d = 0; d < 60; ++d) {
        m.entries.push_back({d, 0, payload.data(), bytes / 60});
      }
      rig.vm.device(r).frontend.write_to_rank(m);
    });
  }
  return rig.host.clock.run_parallel(branches);
}

void run_bench(benchmark::State& state, bool parallel) {
  for (auto _ : state) {
    auto durations = run_timeline(parallel);
    g_timelines[parallel] = durations;
    SimNs max_end = 0;
    for (SimNs d : durations) max_end = std::max(max_end, d);
    state.SetIterationTime(ns_to_s(max_end));
  }
}

void print_summary() {
  print_header("Fig 16 - virtio request time per rank (one write op)",
               "sequential: each rank's request queues behind the previous "
               "(rising staircase); parallel: near-uniform times");
  std::printf("%8s | %14s | %14s\n", "rank id", "vPIM-Seq", "vPIM (par)");
  for (std::uint32_t r = 0; r < kRanks; ++r) {
    std::printf("%8u | %12.1fms | %12.1fms\n", r,
                g_timelines.count(false)
                    ? ns_to_ms(g_timelines[false][r])
                    : 0.0,
                g_timelines.count(true) ? ns_to_ms(g_timelines[true][r])
                                        : 0.0);
  }
}

}  // namespace
}  // namespace vpim::bench

int main(int argc, char** argv) {
  using namespace vpim::bench;
  benchmark::Initialize(&argc, argv);
  benchmark::RegisterBenchmark("fig16/vPIM-Seq",
                               [](benchmark::State& state) {
                                 run_bench(state, false);
                               })
      ->UseManualTime()
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("fig16/vPIM-parallel",
                               [](benchmark::State& state) {
                                 run_bench(state, true);
                               })
      ->UseManualTime()
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
  benchmark::RunSpecifiedBenchmarks();
  print_summary();
  benchmark::Shutdown();
  return 0;
}
