// Fig 13: write-to-rank step breakdown (page management, serialization,
// virtio interrupt, deserialization, data transfer) for vPIM-rust vs
// vPIM-C on the checksum program (60 DPUs, 8 MB). Paper: T-data dominates
// (98.3% rust, 69.3% C) and is what the C rewrite shrinks; the other
// steps stay roughly constant.
#include <benchmark/benchmark.h>

#include <map>

#include "bench/bench_util.h"

namespace vpim::bench {
namespace {

std::map<std::string, StepBreakdown> g_steps;
std::vector<BenchPoint> g_points;

void run_system(benchmark::State& state, const std::string& label,
                const core::VpimConfig& config) {
  prim::ChecksumParams prm;
  prm.nr_dpus = 60;
  prm.file_bytes = static_cast<std::uint64_t>(
      static_cast<double>(8 * kMiB) * env_scale());
  for (auto _ : state) {
    WallTimer wall;
    VmRig rig(config, 1);
    prim::run_checksum(rig.platform, prm);
    const double wall_ms = wall.elapsed_ms();
    const StepBreakdown& steps = rig.vm.device(0).stats.wsteps;
    g_steps[label] = steps;
    state.SetIterationTime(ns_to_s(steps.total()));
    for (std::size_t i = 0; i < kWrankStepNames.size(); ++i) {
      state.counters[std::string(kWrankStepNames[i]) + "_ms"] =
          ns_to_ms(steps.step_time[i]);
    }
    state.counters["wall_ms"] = wall_ms;
    g_points.push_back({"fig13/" + label, steps.total(), wall_ms});
  }
}

void print_summary() {
  print_header("Fig 13 - write-to-rank step breakdown (checksum, 8 MB)",
               "T-data is 98.3% of W-rank time for rust, 69.3% for C; "
               "Page/Ser/Int/Deser roughly constant across data paths");
  std::printf("%-10s |", "system");
  for (auto name : kWrankStepNames) std::printf(" %9.9s |", name.data());
  std::printf(" %9s | T-data%%\n", "total");
  for (const auto& [label, steps] : g_steps) {
    std::printf("%-10s |", label.c_str());
    for (std::size_t i = 0; i < kWrankStepNames.size(); ++i) {
      std::printf(" %7.2fms |", ns_to_ms(steps.step_time[i]));
    }
    std::printf(" %7.2fms | %5.1f%%\n", ns_to_ms(steps.total()),
                100.0 * ratio(steps.time(WrankStep::kTransferData),
                              steps.total()));
  }
}

}  // namespace
}  // namespace vpim::bench

int main(int argc, char** argv) {
  using namespace vpim::bench;
  benchmark::Initialize(&argc, argv);
  benchmark::RegisterBenchmark("fig13/vPIM-rust",
                               [](benchmark::State& state) {
                                 run_system(state, "vPIM-rust",
                                            vpim::core::VpimConfig::rust());
                               })
      ->UseManualTime()
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("fig13/vPIM-C",
                               [](benchmark::State& state) {
                                 run_system(state, "vPIM-C",
                                            vpim::core::VpimConfig::c_only());
                               })
      ->UseManualTime()
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
  benchmark::RunSpecifiedBenchmarks();
  print_summary();
  write_bench_json("fig13", g_points);
  benchmark::Shutdown();
  return 0;
}
