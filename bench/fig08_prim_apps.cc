// Fig 8: execution time of the 16 PrIM applications, native vs vPIM, with
// 1 rank (60 DPUs) and 8 ranks (480 DPUs), segmented into CPU-DPU / DPU /
// Inter-DPU / DPU-CPU.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <map>
#include "common/stats.h"

#include "bench/bench_util.h"

namespace vpim::bench {
namespace {

struct Row {
  prim::AppResult native;
  prim::AppResult vpim;
};
std::map<std::pair<std::string, std::uint32_t>, Row> g_rows;
std::vector<BenchPoint> g_points;

void bench_app(benchmark::State& state, const std::string& name,
               const std::string& app, std::uint32_t dpus,
               bool virtualized) {
  prim::AppParams prm;
  prm.nr_dpus = dpus;
  prm.scale = env_scale();
  for (auto _ : state) {
    WallTimer wall;
    prim::AppResult res =
        virtualized ? run_prim_vpim(app, prm, core::VpimConfig::full())
                    : run_prim_native(app, prm);
    const double wall_ms = wall.elapsed_ms();
    state.SetIterationTime(ns_to_s(res.total()));
    state.counters["correct"] = res.correct ? 1 : 0;
    state.counters["wall_ms"] = wall_ms;
    auto& row = g_rows[{app, dpus}];
    (virtualized ? row.vpim : row.native) = res;
    g_points.push_back({name, res.total(), wall_ms});
  }
}

void print_summary() {
  print_header(
      "Fig 8 - PrIM applications, strong scaling (60 vs 480 DPUs)",
      "overhead 1.01x-2.07x @60 DPUs (avg 1.24x), 1.02x-2.89x @480 DPUs "
      "(avg 1.54x); SEL/UNI/SpMV/BFS slow down at 480 DPUs due to serial "
      "transfers; RED/SCAN/HST Inter-DPU or DPU-CPU steps inflated by the "
      "prefetch cache");
  std::printf("%-9s %5s | %10s %10s %10s %10s | %10s | %8s | %s\n", "app",
              "#DPU", "CPU-DPU", "DPU", "Inter-DPU", "DPU-CPU", "total",
              "overhead", "ok");
  std::vector<double> overheads60, overheads480;
  for (const auto& app : prim::app_names()) {
    for (std::uint32_t dpus : {60u, 480u}) {
      auto it = g_rows.find({app, dpus});
      if (it == g_rows.end()) continue;
      const Row& row = it->second;
      for (const bool virtualized : {false, true}) {
        const prim::AppResult& r =
            virtualized ? row.vpim : row.native;
        std::printf(
            "%-9s %5u | %9.1fms %9.1fms %9.1fms %9.1fms | %9.1fms |",
            (std::string(virtualized ? "v:" : "n:") + app).c_str(), dpus,
            ns_to_ms(r.breakdown[Segment::kCpuDpu]),
            ns_to_ms(r.breakdown[Segment::kDpu]),
            ns_to_ms(r.breakdown[Segment::kInterDpu]),
            ns_to_ms(r.breakdown[Segment::kDpuCpu]), ns_to_ms(r.total()));
        if (virtualized) {
          const double ov = ratio(row.vpim.total(), row.native.total());
          std::printf(" %7.2fx |", ov);
          (dpus == 60 ? overheads60 : overheads480).push_back(ov);
        } else {
          std::printf(" %8s |", "-");
        }
        std::printf(" %s\n", r.correct ? "yes" : "NO");
      }
    }
  }
  if (!overheads60.empty()) {
    std::printf("\nmeasured overhead @60 DPUs:  min %.2fx  geomean %.2fx  "
                "max %.2fx   (paper: 1.01x / 1.24x avg / 2.07x)\n",
                *std::min_element(overheads60.begin(), overheads60.end()),
                geomean(overheads60),
                *std::max_element(overheads60.begin(), overheads60.end()));
  }
  if (!overheads480.empty()) {
    std::printf("measured overhead @480 DPUs: min %.2fx  geomean %.2fx  "
                "max %.2fx   (paper: 1.02x / 1.54x avg / 2.89x)\n",
                *std::min_element(overheads480.begin(), overheads480.end()),
                geomean(overheads480),
                *std::max_element(overheads480.begin(),
                                  overheads480.end()));
  }
}

}  // namespace
}  // namespace vpim::bench

int main(int argc, char** argv) {
  using namespace vpim::bench;
  benchmark::Initialize(&argc, argv);
  for (const auto& app : vpim::prim::app_names()) {
    for (std::uint32_t dpus : {60u, 480u}) {
      for (const bool virtualized : {false, true}) {
        const std::string name = "fig08/" + app + "/dpus:" +
                                 std::to_string(dpus) +
                                 (virtualized ? "/vPIM" : "/native");
        benchmark::RegisterBenchmark(
            name.c_str(),
            [name, app, dpus, virtualized](benchmark::State& state) {
              bench_app(state, name, app, dpus, virtualized);
            })
            ->UseManualTime()
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
      }
    }
  }
  benchmark::RunSpecifiedBenchmarks();
  print_summary();
  write_bench_json("fig08", g_points);
  benchmark::Shutdown();
  return 0;
}
