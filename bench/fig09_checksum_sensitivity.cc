// Fig 9: checksum sensitivity analysis — (a) #vCPUs, (b) #DPUs, (c) data
// size per DPU — native vs vPIM.
#include <benchmark/benchmark.h>

#include <map>

#include "bench/bench_util.h"

namespace vpim::bench {
namespace {

struct Cell {
  SimNs native = 0;
  SimNs vpim = 0;
  prim::ChecksumResult last;
};
std::map<std::string, Cell> g_cells;

prim::ChecksumParams params_for(std::uint32_t dpus, std::uint64_t mb) {
  prim::ChecksumParams prm;
  prm.nr_dpus = dpus;
  prm.file_bytes =
      static_cast<std::uint64_t>(static_cast<double>(mb * kMiB) *
                                 env_scale());
  return prm;
}

void run_cell(benchmark::State& state, const std::string& key,
              std::uint32_t vcpus, std::uint32_t dpus, std::uint64_t mb,
              bool virtualized) {
  const prim::ChecksumParams prm = params_for(dpus, mb);
  for (auto _ : state) {
    prim::ChecksumResult res;
    if (virtualized) {
      VmRig rig(core::VpimConfig::full(), (dpus + 59) / 60, vcpus);
      res = prim::run_checksum(rig.platform, prm);
    } else {
      NativeRig rig;
      res = prim::run_checksum(rig.platform, prm);
    }
    state.SetIterationTime(ns_to_s(res.total));
    state.counters["correct"] = res.correct ? 1 : 0;
    state.counters["ci_ops"] = static_cast<double>(res.ci_ops);
    Cell& cell = g_cells[key];
    (virtualized ? cell.vpim : cell.native) = res.total;
    cell.last = res;
  }
}

void add(const std::string& key, std::uint32_t vcpus, std::uint32_t dpus,
         std::uint64_t mb) {
  for (const bool virtualized : {false, true}) {
    const std::string name =
        "fig09/" + key + (virtualized ? "/vPIM" : "/native");
    benchmark::RegisterBenchmark(
        name.c_str(),
        [=](benchmark::State& state) {
          run_cell(state, key, vcpus, dpus, mb, virtualized);
        })
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

void print_summary() {
  print_header("Fig 9 - checksum sensitivity (vCPUs / DPUs / data size)",
               "(a) flat in #vCPUs; (b) grows with #DPUs; (c) overhead "
               "falls with size, 2.33x @8MB -> 1.29x @60MB");
  std::printf("%-22s | %10s | %10s | %8s\n", "config", "native", "vPIM",
              "overhead");
  for (const auto& [key, cell] : g_cells) {
    std::printf("%-22s | %8.1fms | %8.1fms | %7.2fx\n", key.c_str(),
                ns_to_ms(cell.native), ns_to_ms(cell.vpim),
                ratio(cell.vpim, cell.native));
  }
  std::printf("\npaper op-count context (§5.3.1): 1 write-to-rank, 60 "
              "read-from-rank, 8k-28k CI ops per run; measured last cell: "
              "%lu writes, %lu reads, %lu CI ops\n",
              static_cast<unsigned long>(
                  g_cells.empty() ? 0 : g_cells.rbegin()->second.last
                                            .write_ops),
              static_cast<unsigned long>(
                  g_cells.empty() ? 0 : g_cells.rbegin()->second.last
                                            .read_ops),
              static_cast<unsigned long>(
                  g_cells.empty() ? 0 : g_cells.rbegin()->second.last
                                            .ci_ops));
}

}  // namespace
}  // namespace vpim::bench

int main(int argc, char** argv) {
  using namespace vpim::bench;
  benchmark::Initialize(&argc, argv);
  // (a) vary #vCPUs: 60 DPUs, 60 MB per DPU.
  for (std::uint32_t vcpus : {2u, 4u, 8u, 16u}) {
    add("a_vcpus:" + std::to_string(vcpus), vcpus, 60, 60);
  }
  // (b) vary #DPUs: 16 vCPUs, 60 MB per DPU.
  for (std::uint32_t dpus : {1u, 8u, 16u, 60u}) {
    add("b_dpus:" + std::string(dpus < 10 ? "0" : "") +
            std::to_string(dpus),
        16, dpus, 60);
  }
  // (c) vary data size: 60 DPUs, 16 vCPUs.
  for (std::uint64_t mb : {8u, 20u, 40u, 60u}) {
    add("c_mb:" + std::string(mb < 10 ? "0" : "") + std::to_string(mb), 16,
        60, mb);
  }
  benchmark::RunSpecifiedBenchmarks();
  print_summary();
  benchmark::Shutdown();
  return 0;
}
