// Ablations over vPIM design choices that DESIGN.md calls out:
//  - prefetch cache size (pages per DPU): bigger caches amortize more
//    small reads but inflate every miss (Takeaway 1);
//  - batch buffer size (pages per DPU): bigger buffers mean fewer flushes;
//  - GPA->HVA translation worker threads (§4.2 "several threads");
//  - vhost-style transitions (§7 future work) vs classic virtio-mmio.
// NW (small transfers) and RED (one tiny Inter-DPU read) are the probe
// workloads because they sit at opposite ends of the prefetch trade-off.
#include <benchmark/benchmark.h>

#include <map>

#include "bench/bench_util.h"

namespace vpim::bench {
namespace {

std::map<std::string, SimNs> g_results;

prim::AppParams probe_params() {
  prim::AppParams prm;
  prm.nr_dpus = 60;
  prm.scale = env_scale();
  return prm;
}

void run_probe(benchmark::State& state, const std::string& key,
               const std::string& app, const core::VpimConfig& config,
               std::uint32_t translate_threads) {
  for (auto _ : state) {
    VmRig rig(config, 1);
    rig.host.cost.translate_threads = translate_threads;
    const auto res = prim::make_app(app)->run(rig.platform, probe_params());
    state.SetIterationTime(ns_to_s(res.total()));
    state.counters["correct"] = res.correct ? 1 : 0;
    g_results[key] = res.total();
  }
}

void add(const std::string& key, const std::string& app,
         const core::VpimConfig& config, std::uint32_t threads = 8) {
  benchmark::RegisterBenchmark(
      ("ablation/" + key).c_str(),
      [=](benchmark::State& state) {
        run_probe(state, key, app, config, threads);
      })
      ->UseManualTime()
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
}

void print_summary() {
  print_header("Frontend design-choice ablations (NW & RED probes)",
               "prefetch sizing trades hit amortization against fill "
               "inflation; batching sizing trades flush count against "
               "memory; vhost cuts the per-message transition cost");
  for (const auto& [key, total] : g_results) {
    std::printf("%-36s %10.1f ms\n", key.c_str(), ns_to_ms(total));
  }
}

}  // namespace
}  // namespace vpim::bench

int main(int argc, char** argv) {
  using namespace vpim::bench;
  using vpim::core::VpimConfig;
  benchmark::Initialize(&argc, argv);

  // Prefetch cache size sweep (NW benefits, RED suffers).
  for (std::uint32_t pages : {4u, 16u, 64u}) {
    VpimConfig cfg = VpimConfig::full();
    cfg.prefetch_cache_pages = pages;
    add("cache_pages:" + std::to_string(pages) + "/NW", "NW", cfg);
    add("cache_pages:" + std::to_string(pages) + "/RED", "RED", cfg);
  }
  {
    VpimConfig cfg = VpimConfig::full();
    cfg.prefetch_cache = false;
    add("cache_off/NW", "NW", cfg);
    add("cache_off/RED", "RED", cfg);
  }

  // Batch buffer size sweep (NW writes).
  for (std::uint32_t pages : {16u, 64u, 256u}) {
    VpimConfig cfg = VpimConfig::full();
    cfg.batch_buffer_pages = pages;
    add("batch_pages:" + std::to_string(pages) + "/NW", "NW", cfg);
  }

  // Translation worker threads (bulk write path; VA is bandwidth-bound).
  for (std::uint32_t threads : {1u, 8u}) {
    add("translate_threads:" + std::to_string(threads) + "/VA", "VA",
        VpimConfig::full(), threads);
  }

  // Classic virtio-mmio vs vhost transitions on the small-transfer probe.
  add("transport_virtio/NW", "NW", VpimConfig::full());
  add("transport_vhost/NW", "NW", VpimConfig::vhost());

  benchmark::RunSpecifiedBenchmarks();
  print_summary();
  benchmark::Shutdown();
  return 0;
}
